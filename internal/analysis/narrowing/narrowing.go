// Package narrowing flags integer conversions that can silently truncate a
// size. In the packages that build the compact SoA/CSR layout (graph, gen,
// partition, ftlog), a value that derives from len() or cap() — an element
// count, a byte length, a loop index bounded by one — is "size-tainted";
// converting a tainted value to a strictly narrower integer type (int →
// int32, VertexID → uint16, int → uint32, ...) is reported unless a
// dominating bound check clears it first:
//
//	if len(keys) > math.MaxInt32 {
//		panic("csr: edge count overflows int32")
//	}
//	for i, k := range keys {
//		idx[cur[k]] = int32(i) // ok: i is bounded by the checked len
//	}
//
// At the paper's Twitter scale (1.47B edges) the edge count sits within
// 1.5× of int32 overflow: an unchecked int32(i) over the edge array wraps
// negative and corrupts the CSR silently instead of failing loudly. The
// clearing patterns mirror wirebounds: a comparison of the tainted value
// (or of len(container) itself) inside an if whose body diverges, a %
// modular reduction, an & mask, or a min() clamp. Values that do not derive
// from len/cap — hashes, configured constants, decoded fields — are never
// flagged; wirebounds owns the wire-input side.
//
// Exceptions carry //imitator:narrowing-ok <reason>.
package narrowing

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imitator/internal/analysis"
)

// DefaultPackages are the import paths (suffix-matched like the determinism
// allowlist) whose narrowing conversions feed the SoA/CSR layout.
var DefaultPackages = []string{
	"imitator/internal/graph",
	"imitator/internal/gen",
	"imitator/internal/partition",
	"imitator/internal/ftlog",
}

// New returns the narrowing analyzer scoped to the given import paths
// (exact or suffix match; nil means DefaultPackages).
func New(pkgs []string) *analysis.Analyzer {
	if pkgs == nil {
		pkgs = DefaultPackages
	}
	a := &analysis.Analyzer{
		Name:      "narrowing",
		Directive: "narrowing",
		Doc:       "require a dominating bound check before narrowing a len/cap-derived value to a smaller integer type",
	}
	a.Run = func(pass *analysis.Pass) error { return run(pass, pkgs) }
	return a
}

func matches(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasSuffix(path, strings.TrimPrefix(p, "imitator")) {
			return true
		}
	}
	return false
}

// sizes models the 64-bit targets the scale argument is about; on them a
// plain int is 8 bytes, so int→int32 is a narrowing.
var sizes = types.SizesFor("gc", "amd64")

func run(pass *analysis.Pass, pkgs []string) error {
	if pass.Pkg == nil || !matches(pass.Pkg.Path(), pkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{
				pass:    pass,
				tainted: map[*types.Var]bool{},
				bounded: map[types.Object]bool{},
			}
			w.walkStmts(fd.Body.List)
		}
	}
	return nil
}

type walker struct {
	pass    *analysis.Pass
	tainted map[*types.Var]bool
	// bounded marks containers whose len was compared in a diverging if:
	// after `if len(keys) > limit { return err }`, len(keys) and range
	// indexes over keys are clean.
	bounded map[types.Object]bool
}

// walkStmts interprets statements in order; branch bodies share state, as
// in wirebounds (permissive by design — the guard idiom is straight-line).
func (w *walker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.checkExprs(s.Rhs)
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					t := w.taintedExpr(s.Rhs[i])
					if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
						t = t || w.taintedExpr(lhs)
					}
					w.setTaint(id, t)
					w.setBounded(id, w.boundedExpr(s.Rhs[i]))
				} else if w.taintedExpr(s.Rhs[i]) {
					// A tainted element write taints the container, so
					// taint survives round-trips through slices/arrays
					// (bounds[s] = [2]int{lo, hi}; ... bounds[s][1]).
					if obj, ok := rootObject(w.pass.TypesInfo, lhs).(*types.Var); ok {
						w.tainted[obj] = true
					}
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.checkExprs(vs.Values)
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.setTaint(name, w.taintedExpr(vs.Values[i]))
							w.setBounded(name, w.boundedExpr(vs.Values[i]))
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.walkStmts(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
		if diverges(s.Body) {
			w.clearCompared(s.Cond)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		// An induction variable racing to a tainted bound is itself a
		// size: `for i := 0; i < n; i++` taints i when n is.
		if s.Cond != nil {
			w.checkExpr(s.Cond)
			w.taintInduction(s.Cond)
		}
		w.walkStmts(s.Body.List)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		// A range index is bounded by len(X): tainted unless X's length
		// was bound-checked (or X is itself an int range over a clean n).
		keyTaint := w.rangeKeyTainted(s.X)
		if id, ok := s.Key.(*ast.Ident); ok && s.Tok != token.ILLEGAL {
			w.setTaint(id, keyTaint)
		}
		if id, ok := s.Value.(*ast.Ident); ok && s.Value != nil {
			w.setTaint(id, false) // element values are data, not sizes
		}
		w.walkStmts(s.Body.List)
	case *ast.ExprStmt:
		w.checkExpr(s.X)
	case *ast.ReturnStmt:
		w.checkExprs(s.Results)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List)
		}
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List)
		}
	}
}

// taintInduction taints loop variables compared against a tainted bound.
func (w *walker) taintInduction(cond ast.Expr) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || !isComparison(be.Op) {
		return
	}
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && w.taintedExpr(be.Y) {
		w.setTaint(id, true)
	}
	if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok && w.taintedExpr(be.X) {
		w.setTaint(id, true)
	}
}

// rangeKeyTainted decides whether the index of `range X` is size-tainted:
// yes for slices/arrays/strings/maps whose len was never bound-checked, and
// for integer ranges over a tainted n.
func (w *walker) rangeKeyTainted(x ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[x]
	if ok {
		if basic, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && basic.Info()&types.IsInteger != 0 {
			return w.taintedExpr(x) // go1.22 `range n`
		}
	}
	if obj := rootObject(w.pass.TypesInfo, x); obj != nil && w.bounded[obj] {
		return false
	}
	return true
}

// checkExprs / checkExpr scan for narrowing conversions of tainted values.
func (w *walker) checkExprs(exprs []ast.Expr) {
	for _, e := range exprs {
		w.checkExpr(e)
	}
}

func (w *walker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := w.pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		if !w.narrows(tv.Type, arg) || !w.taintedExpr(arg) {
			return true
		}
		w.pass.Reportf(call.Pos(),
			"%s conversion narrows a len/cap-derived value and can overflow silently at scale; add a dominating bound check (compare it or len(...) against the target's max first) or annotate //imitator:narrowing-ok <reason>",
			types.TypeString(tv.Type, types.RelativeTo(w.pass.Pkg)))
		return true
	})
}

// narrows reports whether converting arg to target loses integer width.
func (w *walker) narrows(target types.Type, arg ast.Expr) bool {
	tb, ok := target.Underlying().(*types.Basic)
	if !ok || tb.Info()&types.IsInteger == 0 {
		return false
	}
	av, ok := w.pass.TypesInfo.Types[arg]
	if !ok {
		return false
	}
	if av.Value != nil {
		return false // constant-folded: the compiler checks the range
	}
	ab, ok := av.Type.Underlying().(*types.Basic)
	if !ok || ab.Info()&types.IsInteger == 0 {
		return false
	}
	return sizes.Sizeof(tb) < sizes.Sizeof(ab)
}

// boundedExpr reports whether an expression yields a container of known,
// untainted size: make() with clean size args, a composite literal, a slice
// of (or alias to) a bounded container. Range indexes over such containers
// are not sizes worth guarding.
func (w *walker) boundedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		obj := objectOf(w.pass.TypesInfo, e)
		return obj != nil && w.bounded[obj]
	case *ast.SliceExpr:
		return w.boundedExpr(e.X)
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin)
		if !ok || b.Name() != "make" {
			return false
		}
		for _, sz := range e.Args[1:] {
			if w.taintedExpr(sz) {
				return false
			}
		}
		return true
	}
	return false
}

func (w *walker) setBounded(id *ast.Ident, bounded bool) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := objectOf(w.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	if bounded {
		w.bounded[obj] = true
	} else {
		delete(w.bounded, obj)
	}
}

func (w *walker) setTaint(id *ast.Ident, tainted bool) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := objectOf(w.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	if tainted {
		w.tainted[obj] = true
	} else {
		delete(w.tainted, obj)
	}
}

// taintedExpr reports whether e's value derives from len() or cap().
func (w *walker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := objectOf(w.pass.TypesInfo, e)
		return obj != nil && w.tainted[obj]
	case *ast.BinaryExpr:
		switch e.Op {
		case token.REM, token.AND:
			// x % m and x & mask are modular reductions: bounded by the
			// (untainted) right operand.
			if !w.taintedExpr(e.Y) {
				return false
			}
		}
		return w.taintedExpr(e.X) || w.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	case *ast.CallExpr:
		return w.taintedCall(e)
	case *ast.IndexExpr:
		// Elements of a container that received tainted writes are
		// tainted; the index itself is not part of the value.
		return w.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if w.taintedExpr(el) {
				return true
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := w.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return w.tainted[obj]
		}
	}
	return false
}

func (w *walker) taintedCall(call *ast.CallExpr) bool {
	// Conversions propagate the operand's taint.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.taintedExpr(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				// The taint source — unless this container's length was
				// already bound-checked.
				if obj := rootObject(w.pass.TypesInfo, call.Args[0]); obj != nil && w.bounded[obj] {
					return false
				}
				return true
			case "min": // clamped: someone chose a ceiling
				return false
			}
			return false
		}
	}
	return false
}

// clearCompared handles the diverging-if bound pattern: it untaints every
// identifier compared in cond and records containers whose len/cap was
// compared, so later len(X) and range-X indexes are clean.
func (w *walker) clearCompared(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		// Only ordered comparisons establish a bound: `if m == 0 { return }`
		// rules out zero but caps nothing.
		if !ok || !isOrdered(be.Op) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.Ident:
					if obj := objectOf(w.pass.TypesInfo, m); obj != nil {
						delete(w.tainted, obj)
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
						if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") && len(m.Args) == 1 {
							if obj := rootObject(w.pass.TypesInfo, m.Args[0]); obj != nil {
								w.bounded[obj] = true
							}
						}
					}
				}
				return true
			})
		}
		return true
	})
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
		return true
	}
	return false
}

func isOrdered(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// diverges reports whether a block leaves normal control flow.
func diverges(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

func objectOf(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// rootObject resolves the base identifier of x (possibly behind selectors
// or indexes) to its object, for bounded-container bookkeeping.
func rootObject(info *types.Info, x ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[e].(*types.Var); ok {
				return obj
			}
			if obj, ok := info.Defs[e].(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		default:
			return nil
		}
	}
}
