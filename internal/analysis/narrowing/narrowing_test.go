package narrowing_test

import (
	"testing"

	"imitator/internal/analysis/analysistest"
	"imitator/internal/analysis/narrowing"
)

func TestNarrowing(t *testing.T) {
	a := narrowing.New(nil)
	analysistest.Run(t, "testdata", a, "imitator/internal/graph", "imitator/internal/other")
}

// TestDefaultScope pins the allowlist: exactly the packages that build or
// serialize the SoA/CSR layout.
func TestDefaultScope(t *testing.T) {
	want := map[string]bool{
		"imitator/internal/graph":     true,
		"imitator/internal/gen":       true,
		"imitator/internal/partition": true,
		"imitator/internal/ftlog":     true,
	}
	if len(want) != len(narrowing.DefaultPackages) {
		t.Fatalf("DefaultPackages has %d entries, want %d", len(narrowing.DefaultPackages), len(want))
	}
	for _, p := range narrowing.DefaultPackages {
		if !want[p] {
			t.Errorf("unexpected default package %q", p)
		}
	}
}
