// Package determinism enforces the repository's bit-for-bit replay
// invariant inside simulation packages: no wall-clock reads, no global
// math/rand state, and no map iteration whose visit order can leak into
// ordered engine state (message emission, cost accumulation, traces).
//
// The replication scheme this repo reproduces (Imitator, DSN 2014) depends
// on replicas being consistent backups of their masters; ROADMAP.md pins
// the stronger engineering form of that property — sim_seconds/msg_bytes
// identical across optimizations. A single `range m` feeding a send buffer
// silently breaks it, so the check runs at vet time.
//
// A map range is accepted without annotation when its body only aggregates
// commutatively: counters, op-assign accumulations, writes into other maps,
// constant-only early returns (the ∃/∀ membership idiom) and local
// derivations. Anything else — append, method calls, non-constant returns —
// needs either a rewrite (sort the keys first) or a justification:
//
//	//imitator:nondet-ok <reason>
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imitator/internal/analysis"
)

// DefaultSimPackages lists the packages whose state feeds simulated time,
// message bytes or traces. cmd/ and examples/ run on wall clocks and are
// deliberately out of scope.
var DefaultSimPackages = []string{
	"imitator/internal/chaos",
	"imitator/internal/core",
	"imitator/internal/netsim",
	"imitator/internal/transport",
	"imitator/internal/coord",
	"imitator/internal/costmodel",
	"imitator/internal/dfs",
	// The FT-log codec's bytes are replayed during recovery and compared
	// bit-for-bit across worker counts, so it must stay deterministic.
	"imitator/internal/ftlog",
	// The SWIM detector's probe order, suspicion timing and piggyback
	// traffic are simulation outputs (membership bench invariants), so
	// the whole protocol must stay seeded-deterministic.
	"imitator/internal/gossip",
	"imitator/internal/partition",
	// The omission-fault layer draws per-link fates from internal/rng, so
	// its state now feeds retransmit counts and simulated time too.
	"imitator/internal/rng",
	// The PR-7 parallel era: host scheduling must never consult wall
	// clocks or global rand (bit-identity at every width depends on it),
	// and the sharded generators derive every byte from seeded streams.
	"imitator/internal/hostpar",
	"imitator/internal/gen",
}

// New returns the determinism analyzer scoped to the given package paths
// (exact or suffix match).
func New(simPackages []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "determinism",
		Directive: "nondet",
		Doc: "forbid wall-clock reads, global math/rand and order-leaking map " +
			"iteration in simulation packages",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !matches(pass.Pkg.Path(), simPackages) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, n)
				case *ast.RangeStmt:
					checkRange(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func matches(path string, patterns []string) bool {
	for _, p := range patterns {
		if path == p || strings.HasSuffix(path, p) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time package reads that observe the host clock.
// Timers and tickers are caught transitively: they are built from these.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "Tick": true, "After": true, "AfterFunc": true,
}

// seededConstructors are the math/rand package-level functions that build
// explicitly-seeded generators — the approved route to randomness.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// checkCall flags wall-clock reads and global math/rand use. Methods on an
// explicitly seeded *rand.Rand are fine; the package-level convenience
// functions share hidden global state and are not.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a simulation package; inject a Clock (see internal/coord) or derive time from the simulated clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s uses the global generator; use internal/rng or an explicitly seeded *rand.Rand so runs replay bit-for-bit", fn.Name())
		}
	}
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// checkRange flags `range m` over a map unless the body provably aggregates
// commutatively.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if commutativeBody(pass.TypesInfo, rng.Body) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is random and this body does not aggregate commutatively; iterate sorted keys, restructure, or annotate //imitator:nondet-ok <reason>")
}

// commutativeBody reports whether every statement in the block is invariant
// under iteration-order permutation, per the conservative grammar in the
// package doc.
func commutativeBody(info *types.Info, block *ast.BlockStmt) bool {
	for _, s := range block.List {
		if !commutativeStmt(info, s) {
			return false
		}
	}
	return true
}

func commutativeStmt(info *types.Info, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			return true
		case token.DEFINE:
			// A pure local derivation is harmless by itself; an
			// order-dependent *use* of it is caught where it happens.
			return true
		case token.ASSIGN:
			// Writes keyed into another map commute (one write per key);
			// every other plain assignment can capture "the last visited
			// element" and is rejected.
			for _, lhs := range s.Lhs {
				if !mapIndexOrBlank(info, lhs) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.ExprStmt:
		// Only the delete builtin: set-subtraction commutes.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !commutativeStmt(info, s.Init) {
			return false
		}
		if !commutativeBody(info, s.Body) {
			return false
		}
		if s.Else != nil {
			return commutativeStmt(info, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return commutativeBody(info, s)
	case *ast.ReturnStmt:
		// Constant-only returns express ∃/∀ over the map — which element
		// triggered them is unobservable. (Approximation: a constant return
		// can skip later commutative updates to captured state; the escape
		// hatch for such code is the annotation.)
		for _, r := range s.Results {
			if !constantExpr(info, r) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

// mapIndexOrBlank reports whether an assignment target is m[k] or _.
func mapIndexOrBlank(info *types.Info, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// constantExpr reports whether e is a literal, a named constant, or nil.
func constantExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if _, ok := e.(*ast.BasicLit); ok {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		switch info.Uses[id].(type) {
		case *types.Const, *types.Nil:
			return true
		}
	}
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	return false
}
