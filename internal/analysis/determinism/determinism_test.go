package determinism_test

import (
	"testing"

	"imitator/internal/analysis/analysistest"
	"imitator/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	a := determinism.New([]string{"detsim"})
	analysistest.Run(t, "testdata", a, "detsim", "nonsim")
}

func TestDefaultScope(t *testing.T) {
	// The default scope must pin exactly the packages whose state feeds
	// simulated time, bytes and traces; a rename that silently drops one
	// out of scope should fail loudly.
	want := map[string]bool{
		"imitator/internal/chaos":     true,
		"imitator/internal/core":      true,
		"imitator/internal/netsim":    true,
		"imitator/internal/transport": true,
		"imitator/internal/coord":     true,
		"imitator/internal/costmodel": true,
		"imitator/internal/dfs":       true,
		"imitator/internal/ftlog":     true,
		"imitator/internal/gossip":    true,
		"imitator/internal/partition": true,
		"imitator/internal/rng":       true,
		"imitator/internal/hostpar":   true,
		"imitator/internal/gen":       true,
	}
	if len(determinism.DefaultSimPackages) != len(want) {
		t.Fatalf("DefaultSimPackages has %d entries, want %d", len(determinism.DefaultSimPackages), len(want))
	}
	for _, p := range determinism.DefaultSimPackages {
		if !want[p] {
			t.Errorf("unexpected sim package %q", p)
		}
	}
}
