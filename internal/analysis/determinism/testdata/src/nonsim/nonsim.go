// Package nonsim is outside the configured simulation set: wall clocks and
// global rand are allowed here (cmd/, examples/ and tooling live off the
// simulated timeline).
package nonsim

import (
	"math/rand"
	"time"
)

func wallClockIsFine() time.Time { return time.Now() }

func globalRandIsFine() int { return rand.Intn(10) }

func mapOrderIsFine(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
