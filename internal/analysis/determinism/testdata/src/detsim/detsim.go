// Package detsim exercises the determinism analyzer: it is configured as a
// simulation package in determinism_test.go.
package detsim

import (
	"math/rand"
	"sort"
	"time"
)

// Wall-clock reads are forbidden in simulation packages.

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func tickers() {
	_ = time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	<-time.After(time.Second)       // want `time\.After reads the wall clock`
}

func annotatedClock() time.Time {
	return time.Now() //imitator:nondet-ok wall-clock boundary for the live CLI
}

func methodOnTime(t time.Time) time.Duration {
	return t.Sub(t) // methods on a value are fine; only the clock read is flagged
}

// Global math/rand shares hidden state; seeded generators are fine.

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn uses the global generator`
}

func seededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// Map iteration: commutative aggregation passes, order leakage is flagged.

func countActive(m map[int]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

func sumInto(m map[int]float64, out map[int]float64) {
	total := 0.0
	for k, v := range m {
		total += v
		out[k] = v * 2
		delete(m, k)
	}
	_ = total
}

func allArrived(alive, arrived map[int]bool) bool {
	for n, a := range alive {
		if a && !arrived[n] {
			return false
		}
	}
	return true
}

func appendLeaksOrder(m map[int]bool) []int {
	var out []int
	for k := range m { // want `map iteration order is random`
		out = append(out, k)
	}
	return out
}

func sortedAfterward(m map[int]bool) []int {
	var out []int
	//imitator:nondet-ok keys are sorted before use below
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func lastWriterWins(m map[int]int) int {
	var last int
	for _, v := range m { // want `map iteration order is random`
		last = v
	}
	return last
}

func nonConstantReturn(m map[int]int) int {
	for _, v := range m { // want `map iteration order is random`
		if v > 0 {
			return v
		}
	}
	return 0
}

func rangeOverSlice(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
