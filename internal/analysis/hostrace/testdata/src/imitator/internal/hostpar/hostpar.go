// Package hostpar is a stub of the real scheduling primitives, just enough
// for the hostrace fixtures to type-check against the real import path.
package hostpar

func For(n, width int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func Blocks(n, minBlock, width int, fn func(lo, hi int)) {
	fn(0, n)
}
