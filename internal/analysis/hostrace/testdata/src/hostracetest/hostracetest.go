// Fixture for the hostrace analyzer: every write class a parallel body can
// make, safe and unsafe, across hostpar and the phase-pool executors.
package hostracetest

import (
	"sync"

	"imitator/internal/hostpar"
)

type cluster struct {
	nodes  []int
	counts []int
	total  int
	byKey  map[int]int
	mu     sync.Mutex
}

func (c *cluster) sharedCounter(n int) {
	hostpar.For(n, 4, func(i int) {
		c.total += i // want `writes a captured variable \(total\)`
	})
}

func (c *cluster) indexDisjoint(n int) {
	hostpar.For(n, 4, func(i int) {
		c.counts[i] = i * 2 // disjoint slot: fine
	})
}

func (c *cluster) derivedOwnership(n int) {
	hostpar.Blocks(n, 1, 4, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			slot := v % len(c.counts)    // derived from an owned value: owned
			c.counts[slot] = c.nodes[v]  // fine
		}
	})
}

func (c *cluster) mapWrite(n int) {
	hostpar.For(n, 4, func(i int) {
		c.byKey[i] = i // want `a captured map`
	})
}

func (c *cluster) lockGuarded(n int) {
	hostpar.For(n, 4, func(i int) {
		c.mu.Lock()
		c.total += i // guarded: fine
		c.mu.Unlock()
	})
}

func (c *cluster) deferGuarded(n int) {
	hostpar.For(n, 4, func(i int) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.total += i // guarded to end of body: fine
	})
}

func (c *cluster) sharedAlias(n, j int) {
	hostpar.For(n, 4, func(i int) {
		s := c.counts // alias of captured state, no owned index
		s[j] = i      // want `a local alias of captured state \(s\)`
	})
}

func (c *cluster) capturedRange(n int) {
	hostpar.For(n, 4, func(i int) {
		for k := range c.nodes {
			c.nodes[k] = 0 // want `writes a captured variable \(nodes\)`
		}
	})
}

func (c *cluster) localState(n int) {
	hostpar.For(n, 4, func(i int) {
		var acc []int
		cnt := 0
		for v := 0; v < i; v++ {
			acc = append(acc, v) // local accumulation: fine
			cnt++
		}
		_ = acc
		_ = cnt
	})
}

// runPhase mimics the core phase pool: its literal argument is parallel.
func (c *cluster) runPhase(fn func(n int)) { fn(0) }

func (c *cluster) phasePool() {
	c.runPhase(func(n int) {
		c.nodes[n] = n // disjoint slot: fine
		c.total = n    // want `writes a captured variable \(total\)`
	})
}

// helper closures defined in the enclosing function are followed.
func (c *cluster) localHelper(n int) {
	bump := func(v int) {
		c.counts[v]++ // fine: called with an owned argument
	}
	leak := func() {
		c.total++ // want `writes a captured variable \(total\)`
	}
	hostpar.For(n, 4, func(i int) {
		bump(i)
		leak()
	})
}

// eachLike stands in for callback iterators (EachEdgeRange): callback
// parameters are optimistically owned.
func eachLike(lo, hi int, fn func(i int)) {
	for i := lo; i < hi; i++ {
		fn(i)
	}
}

func (c *cluster) callbackParams(n int) {
	hostpar.Blocks(n, 1, 4, func(lo, hi int) {
		eachLike(lo, hi, func(i int) {
			c.counts[i] = i // owned callback param: fine
		})
	})
}

func (c *cluster) suppressed(n int) {
	hostpar.For(n, 4, func(i int) {
		c.total = n //imitator:hostrace-ok fixture exercises the suppression path
	})
}
