package hostrace_test

import (
	"testing"

	"imitator/internal/analysis/analysistest"
	"imitator/internal/analysis/hostrace"
)

func TestHostrace(t *testing.T) {
	analysistest.Run(t, "testdata", hostrace.New(), "hostracetest")
}
