// Package hostrace flags unsynchronized writes to shared state from
// closures that run in parallel: the bodies passed to hostpar.For /
// hostpar.Blocks and to the core phase pools (runPhase, runBarrierPhase,
// eachAlive, runChunks, chunked, chunkEncode). go test -race only catches
// these when the schedule cooperates; the lint catches them statically.
//
// The contract a parallel body must follow is the one hostpar documents:
// write only state owned by the invocation. Ownership is derived from the
// body's parameters (the shard/chunk/node index and anything computed from
// it). A write to a captured variable is reported unless it is
//
//   - index-disjoint: the access path indexes a slice/array with an
//     owned-derived expression (counts[s] = cnt; c.nodes[n] = nd), or the
//     root local was itself derived from an owned value (nd := c.nodes[n];
//     nd.localEdges++), or
//   - mutex-guarded: it executes between x.Lock() and x.Unlock() (a
//     deferred Unlock guards to the end of the body), or
//   - invisible to assignment syntax entirely — sync/atomic calls mutate
//     via method calls and never trip the check.
//
// Concurrent map writes are reported even at owned keys: distinct keys do
// not make a Go map write safe. Calls to closures defined in the enclosing
// function are followed (their bodies run inside the parallel region);
// parameters of literals passed to other callees (EachEdgeRange-style
// callbacks) are optimistically treated as owned, since such callbacks are
// invoked with values derived from the owned range. Function results are
// treated as fresh (pool getters return distinct buffers); mutation hidden
// behind method calls is out of scope.
//
// Exceptions carry //imitator:hostrace-ok <reason>.
package hostrace

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imitator/internal/analysis"
)

// executorMethods are the core phase-pool entry points whose func-literal
// arguments run concurrently.
var executorMethods = map[string]bool{
	"runPhase":        true,
	"runBarrierPhase": true,
	"eachAlive":       true,
	"runChunks":       true,
	"chunked":         true,
	"chunkEncode":     true,
}

// New returns the hostrace analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "hostrace",
		Directive: "hostrace",
		Doc:       "forbid unsynchronized writes to captured variables inside parallel closure bodies",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Closures defined in this function, so parallel bodies can
			// follow calls to them.
			locals := localFuncLits(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isExecutor(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						w := &walker{
							pass:    pass,
							owned:   map[*types.Var]bool{},
							aliases: map[*types.Var]bool{},
							locals:  locals,
							visited: map[*ast.FuncLit]bool{},
						}
						w.analyzeBody(lit, true)
					}
				}
				return true
			})
		}
	}
	return nil
}

// isExecutor recognizes hostpar.For/Blocks and the phase-pool methods.
func isExecutor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); ok {
			path := pn.Imported().Path()
			return strings.HasSuffix(path, "internal/hostpar") &&
				(sel.Sel.Name == "For" || sel.Sel.Name == "Blocks")
		}
	}
	return executorMethods[sel.Sel.Name]
}

// localFuncLits maps variables holding closures defined in the enclosing
// function (helper := func(...) {...}).
func localFuncLits(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	out := map[*types.Var]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			lit, ok := as.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v := objectOf(pass.TypesInfo, id); v != nil {
					out[v] = lit
				}
			}
		}
		return true
	})
	return out
}

type walker struct {
	pass *analysis.Pass
	// owned: variables derived from the invocation's parameters — writes
	// through them (and slice writes indexed by them) are disjoint.
	owned map[*types.Var]bool
	// aliases: locals that alias captured state with no owned index in
	// their derivation; writing through them is writing shared state.
	aliases map[*types.Var]bool
	locals  map[*types.Var]*ast.FuncLit
	visited map[*ast.FuncLit]bool
	// regions brackets every literal analyzed as part of this parallel
	// execution (the body plus followed helper closures); objects declared
	// outside all of them are captured.
	regions   [][2]token.Pos
	lockDepth int
}

// analyzeBody seeds ownership from the literal's parameters and walks it.
// Called closures (local helpers, callbacks) recurse with ownedParams
// telling whether their parameters inherit ownership.
func (w *walker) analyzeBody(lit *ast.FuncLit, ownedParams bool) {
	if w.visited[lit] {
		return
	}
	w.visited[lit] = true
	w.regions = append(w.regions, [2]token.Pos{lit.Pos(), lit.End()})
	for _, fl := range lit.Type.Params.List {
		for _, name := range fl.Names {
			if v, ok := w.pass.TypesInfo.Defs[name].(*types.Var); ok && ownedParams {
				w.owned[v] = true
			}
		}
	}
	w.walkStmts(lit.Body.List)
}

func (w *walker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			w.checkWrite(lhs)
		}
		w.classifyAssign(s)
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs)
		}
	case *ast.IncDecStmt:
		w.checkWrite(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						// var x T with no value: a fresh local, owned.
						cls := clsOwned
						if i < len(vs.Values) {
							cls = w.classifyExpr(vs.Values[i])
							w.walkExpr(vs.Values[i])
						}
						w.setClass(name, cls)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond)
		w.walkStmts(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		w.walkStmts(s.Body.List)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		// Iterating an owned (or local) container yields owned positions;
		// iterating a captured one yields positions every invocation also
		// sees — writes indexed by them are not disjoint.
		cls := w.classifyExpr(s.X)
		if id, ok := s.Key.(*ast.Ident); ok {
			w.setClass(id, cls)
		}
		if id, ok := s.Value.(*ast.Ident); ok {
			w.setClass(id, cls)
		}
		w.walkStmts(s.Body.List)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.GoStmt:
		w.walkExpr(s.Call)
	case *ast.DeferStmt:
		// defer mu.Unlock() guards to the end of the body: do not drop
		// the lock depth. Other deferred calls are walked normally.
		if !isLockCall(s.Call, "Unlock", "RUnlock") {
			w.walkExpr(s.Call)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	}
}

type class int

const (
	clsOwned class = iota
	clsPlain       // local, but not derived from the invocation index
	clsAlias       // local aliasing captured state
	clsCaptured
)

// classifyAssign records the class of plain local targets (x := expr).
func (w *walker) classifyAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		// x, y := f(...): function results are fresh values.
		cls := clsOwned
		for _, rhs := range s.Rhs {
			if w.classifyExpr(rhs) == clsAlias {
				cls = clsAlias
			}
		}
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				w.setClass(id, cls)
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		w.setClass(id, w.classifyExpr(s.Rhs[i]))
	}
}

func (w *walker) setClass(id *ast.Ident, cls class) {
	if id == nil || id.Name == "_" {
		return
	}
	v := objectOf(w.pass.TypesInfo, id)
	if v == nil || w.capturedVar(v) {
		return // assignments to captured vars are handled by checkWrite
	}
	delete(w.owned, v)
	delete(w.aliases, v)
	switch cls {
	case clsOwned:
		w.owned[v] = true
	case clsAlias:
		w.aliases[v] = true
	}
}

// classifyExpr decides what a local initialized from e becomes. Anything
// touched by an owned value is owned (the index-disjointness contract
// extends through derivation: nd := c.nodes[n]). A direct alias of
// captured state (s := c.buf, p := &shared) without an owned index is an
// alias. Call results are fresh. Everything else is plain.
func (w *walker) classifyExpr(e ast.Expr) class {
	if e == nil {
		return clsOwned
	}
	if w.referencesOwned(e) {
		return clsOwned
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return clsOwned // fresh result (pool getters return distinct buffers)
	case *ast.UnaryExpr:
		if e.Op == token.AND && w.capturedRoot(e.X) {
			return clsAlias
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		if w.capturedRoot(e.(ast.Expr)) && isRefType(w.pass, e.(ast.Expr)) {
			return clsAlias
		}
	}
	return clsPlain
}

// walkExpr descends into expressions: nested func literals run inside the
// parallel region (callback bodies), and calls to enclosing-function
// closures are followed.
func (w *walker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isExecutor(w.pass, n) {
				// A nested parallel section is analyzed on its own by run.
				return false
			}
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				if isLockCall(n, "Lock", "RLock") {
					w.lockDepth++
				}
				if isLockCall(n, "Unlock", "RUnlock") && w.lockDepth > 0 {
					w.lockDepth--
				}
				_ = fun
			case *ast.Ident:
				if v := objectOf(w.pass.TypesInfo, fun); v != nil {
					if lit, ok := w.locals[v]; ok {
						// A helper closure from the enclosing function:
						// its body runs here. Parameters inherit
						// ownership when every argument is owned.
						owned := true
						for _, a := range n.Args {
							if w.classifyExpr(a) != clsOwned {
								owned = false
							}
						}
						w.analyzeBody(lit, owned)
					}
				}
			}
		case *ast.FuncLit:
			// A callback literal (EachEdgeRange-style): its body executes
			// within this invocation; its parameters carry values derived
			// from the owned range (documented approximation).
			w.analyzeBody(n, true)
			return false
		}
		return true
	})
}

// checkWrite validates one assignment target.
func (w *walker) checkWrite(lhs ast.Expr) {
	path := ast.Unparen(lhs)
	ownedIndex := false
	mapWrite := false
	indirect := false // wrote through a selector/index/star, not the ident itself
	label := ""       // the field actually written (c.total → "total")
loop:
	for {
		switch e := path.(type) {
		case *ast.ParenExpr:
			path = e.X
		case *ast.IndexExpr:
			if w.referencesOwned(e.Index) {
				if isMapIndex(w.pass, e) {
					mapWrite = true
				} else {
					ownedIndex = true
				}
			} else if isMapIndex(w.pass, e) {
				mapWrite = true
			}
			indirect = true
			path = e.X
		case *ast.SelectorExpr:
			if label == "" {
				label = e.Sel.Name
			}
			indirect = true
			path = e.X
		case *ast.StarExpr:
			indirect = true
			path = e.X
		default:
			break loop
		}
	}
	id, ok := path.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v := objectOf(w.pass.TypesInfo, id)
	if v == nil {
		return
	}
	if label == "" {
		label = v.Name()
	}

	if !w.capturedVar(v) {
		// Local root: plain rebinding is classifyAssign's business;
		// writing *through* a shared alias is a shared write.
		if indirect && w.aliases[v] && !ownedIndex && w.lockDepth == 0 {
			w.report(lhs, label, "a local alias of captured state")
		}
		return
	}
	if mapWrite {
		w.report(lhs, label, "a captured map (concurrent map writes are unsafe even at distinct keys)")
		return
	}
	if ownedIndex || w.lockDepth > 0 {
		return
	}
	w.report(lhs, label, "a captured variable")
}

func (w *walker) report(at ast.Expr, name, what string) {
	w.pass.Reportf(at.Pos(),
		"parallel body writes %s (%s) without an index-disjoint slot, atomic, or lock; shard it by the invocation index or annotate //imitator:hostrace-ok <reason>",
		what, name)
}

// referencesOwned reports whether e mentions any owned variable.
func (w *walker) referencesOwned(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := objectOf(w.pass.TypesInfo, id); v != nil && w.owned[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// capturedRoot reports whether the base identifier of e is captured.
func (w *walker) capturedRoot(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v := objectOf(w.pass.TypesInfo, x)
			return v != nil && w.capturedVar(v)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// capturedVar reports whether v is declared outside every analyzed region
// (including the enclosing receiver and package-level variables).
func (w *walker) capturedVar(v *types.Var) bool {
	if v.IsField() {
		return false // fields are reached through some root; the root decides
	}
	for _, r := range w.regions {
		if v.Pos() >= r[0] && v.Pos() < r[1] {
			return false
		}
	}
	return true
}

func isRefType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

func isMapIndex(pass *analysis.Pass, e *ast.IndexExpr) bool {
	tv, ok := pass.TypesInfo.Types[e.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isLockCall matches x.Lock() / x.Unlock() style calls by method name.
func isLockCall(call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

func objectOf(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}
