package wirebounds_test

import (
	"testing"

	"imitator/internal/analysis/analysistest"
	"imitator/internal/analysis/wirebounds"
)

func TestWirebounds(t *testing.T) {
	analysistest.Run(t, "testdata", wirebounds.New(), "wdecode")
}
