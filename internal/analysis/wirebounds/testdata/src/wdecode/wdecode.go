// Package wdecode exercises the wirebounds analyzer with the repo's
// sticky-reader decoder idiom.
package wdecode

import "encoding/binary"

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() { r.err = errTruncated }

var errTruncated = err("truncated")

type err string

func (e err) Error() string { return string(e) }

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.buf) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) remaining() int { return len(r.buf) }

// decodeUnbounded allocates straight from a 32-bit wire count.
func decodeUnbounded(r *reader) []int32 {
	n := int(r.u32())
	out := make([]int32, n) // want `no dominating bound check`
	for i := 0; i < n; i++ {
		out[i] = int32(r.u32())
	}
	return out
}

// decodeInline feeds the read into make without even a variable.
func decodeInline(r *reader) []byte {
	return make([]byte, int(r.u16())) // want `no dominating bound check`
}

// decodeBounded is the approved idiom: a remaining-payload bound dominates.
func decodeBounded(r *reader) []int32 {
	n := int(r.u32())
	if n*4 > r.remaining() {
		r.fail()
		return nil
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(r.u32())
	}
	return out
}

// decodeClamped bounds through min().
func decodeClamped(r *reader) []byte {
	n := min(int(r.u16()), 1024)
	return make([]byte, n)
}

// decodeFrame mirrors a framed transport read with an explicit limit.
func decodeFrame(r *reader, limit uint32) []byte {
	size := r.u32()
	if size > limit {
		r.fail()
		return nil
	}
	return make([]byte, size)
}

// decodeAppendLoop grows under a tainted loop bound: after a truncation the
// sticky reader yields zeros while the loop keeps appending.
func decodeAppendLoop(r *reader) []uint32 {
	n := int(r.u32())
	var out []uint32
	for i := 0; i < n; i++ { // want `loop bound derives from decoded input`
		out = append(out, r.u32())
	}
	return out
}

// decodeIndexLoop writes into a pre-bounded slice: no growth, no report.
func decodeIndexLoop(r *reader) []uint32 {
	n := int(r.u32())
	if n*4 > r.remaining() {
		r.fail()
		return nil
	}
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = r.u32()
	}
	return out
}

// decodeAnnotated keeps a justified exception.
func decodeAnnotated(r *reader) []byte {
	n := int(r.u16())
	return make([]byte, n) //imitator:wirebounds-ok length is validated by the caller against the checkpoint manifest
}

// decodeMapHint flags map size hints too.
func decodeMapHint(r *reader) map[uint32]bool {
	n := int(r.u32())
	m := make(map[uint32]bool, n) // want `no dominating bound check`
	for i := 0; i < n; i++ {
		m[r.u32()] = true
	}
	return m
}

// buildFixed has no wire-derived sizes: untainted make is fine.
func buildFixed(r *reader) []byte {
	return make([]byte, 64)
}
