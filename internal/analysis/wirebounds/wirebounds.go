// Package wirebounds flags decoder allocations sized by attacker-controlled
// wire input. In any decode-shaped function (name matching decode/read/
// parse/unmarshal), a length that derives from decoded bytes — encoding/
// binary reads or the repo's sticky-reader u16/u32/u64 methods — is
// "tainted"; passing a tainted length to make(), or looping to a tainted
// bound around append, is reported unless a dominating sanity check bounds
// it first:
//
//	n := int(r.u32())
//	if n*14 > r.remaining() { // ← this is the dominating bound
//		r.fail()
//		return &rawEdges{}
//	}
//	e.src = make([]graph.VertexID, n) // ok
//
// Without the bound, a 4-byte frame header can demand a multi-gigabyte
// allocation before any payload byte is read (the sticky reader does not
// stop a count-driven loop either: after truncation it yields zeros while
// the loop keeps appending). A comparison of the tainted value inside an
// if whose body diverges (return/break/continue/panic), clamping through
// min(), or reassignment from an untainted expression all clear the taint.
//
// Exceptions carry //imitator:wirebounds-ok <reason>.
package wirebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"imitator/internal/analysis"
)

// decoderName matches functions whose input is wire- or file-shaped.
var decoderName = regexp.MustCompile(`(?i)(decode|read|parse|unmarshal)`)

// New returns the wirebounds analyzer.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "wirebounds",
		Directive: "wirebounds",
		Doc:       "require a dominating sanity bound before allocating with lengths decoded from wire input",
	}
	a.Run = run
	return a
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !decoderName.MatchString(fd.Name.Name) {
				continue
			}
			w := &walker{pass: pass, tainted: map[*types.Var]bool{}}
			w.walkStmts(fd.Body.List)
		}
	}
	return nil
}

type walker struct {
	pass    *analysis.Pass
	tainted map[*types.Var]bool
}

// walkStmts interprets statements in order. Branch bodies share the state:
// taint acquired anywhere persists; a bound established in a branch also
// persists (deliberately permissive — this is a vet heuristic, and the
// dominating-bound idiom in this codebase is straight-line).
func (w *walker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.checkExprs(s.Rhs)
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					t := w.taintedExpr(s.Rhs[i])
					if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
						t = t || w.taintedExpr(lhs) // op-assign keeps existing taint
					}
					w.setTaint(id, t)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.checkExprs(vs.Values)
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.setTaint(name, w.taintedExpr(vs.Values[i]))
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(&ast.ExprStmt{X: s.Cond}) // surfaces makes inside the cond
		w.walkStmts(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
		// A diverging body guarded by a comparison of the tainted value is
		// the dominating sanity bound.
		if diverges(s.Body) {
			w.clearCompared(s.Cond)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil && w.comparesTainted(s.Cond) && containsAppend(s.Body) {
			w.pass.Reportf(s.Pos(),
				"loop bound derives from decoded input and the body appends; bound the count against the remaining payload first, or annotate //imitator:wirebounds-ok <reason>")
		}
		w.walkStmts(s.Body.List)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		if w.taintedExpr(s.X) && containsAppend(s.Body) {
			w.pass.Reportf(s.Pos(),
				"loop bound derives from decoded input and the body appends; bound the count against the remaining payload first, or annotate //imitator:wirebounds-ok <reason>")
		}
		w.walkStmts(s.Body.List)
	case *ast.ExprStmt:
		w.checkExpr(s.X)
	case *ast.ReturnStmt:
		w.checkExprs(s.Results)
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeferStmt, *ast.GoStmt:
		// Calls inside carry no allocation sites of interest here.
	}
}

// checkExprs / checkExpr scan for make() with a tainted size.
func (w *walker) checkExprs(exprs []ast.Expr) {
	for _, e := range exprs {
		w.checkExpr(e)
	}
}

func (w *walker) checkExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		for _, size := range call.Args[1:] {
			if w.taintedExpr(size) {
				w.pass.Reportf(call.Pos(),
					"make sized by a length decoded from wire input with no dominating bound check; compare it against the remaining payload (see decodeRawEdges) or annotate //imitator:wirebounds-ok <reason>")
				break
			}
		}
		return true
	})
}

func (w *walker) setTaint(id *ast.Ident, tainted bool) {
	if id.Name == "_" {
		return
	}
	obj := w.objectOf(id)
	if obj == nil {
		return
	}
	if tainted {
		w.tainted[obj] = true
	} else {
		delete(w.tainted, obj)
	}
}

// taintedExpr reports whether e's value derives from decoded wire bytes.
func (w *walker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.objectOf(e)
		return obj != nil && w.tainted[obj]
	case *ast.BinaryExpr:
		return w.taintedExpr(e.X) || w.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	case *ast.CallExpr:
		return w.taintedCall(e)
	}
	return false
}

// taintedCall classifies calls: taint sources, conversions (propagate),
// and the min() clamp (clears taint).
func (w *walker) taintedCall(call *ast.CallExpr) bool {
	// Conversion like int(x): propagate the operand's taint.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.taintedExpr(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "min": // clamped: someone chose a ceiling
				return false
			case "max", "len", "cap":
				return false
			}
			return false
		}
	}
	return w.isTaintSource(call)
}

// wireReadNames are taint-source callee names: encoding/binary reads and
// the sticky-reader methods. u8/bool are excluded — a byte-sized count
// cannot demand a harmful allocation.
var wireReadNames = map[string]bool{
	"Uint16": true, "Uint32": true, "Uint64": true,
	"Varint": true, "Uvarint": true, "ReadVarint": true, "ReadUvarint": true,
	"u16": true, "u32": true, "u64": true, "i16": true, "i32": true, "i64": true,
	"varint": true, "uvarint": true,
}

func (w *walker) isTaintSource(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return wireReadNames[name]
}

// clearCompared untaints every tainted identifier that participates in a
// comparison inside cond (the diverging-if bound pattern).
func (w *walker) clearCompared(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be.Op) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := w.objectOf(id); obj != nil {
						delete(w.tainted, obj)
					}
				}
				return true
			})
		}
		return true
	})
}

// comparesTainted reports whether cond compares a tainted value.
func (w *walker) comparesTainted(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && isComparison(be.Op) {
			if w.taintedExpr(be.X) || w.taintedExpr(be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
		return true
	}
	return false
}

// diverges reports whether a block leaves normal control flow.
func diverges(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsAppend reports whether a block grows a slice with append.
func containsAppend(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
		}
		return !found
	})
	return found
}

func (w *walker) objectOf(id *ast.Ident) *types.Var {
	if obj, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := w.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}
