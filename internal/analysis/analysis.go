// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built on the standard library
// only (go/ast, go/types, go/importer). The container this repository grows
// in has no module cache and no network, so the real x/tools packages are
// unavailable; this package mirrors their API shape (Analyzer, Pass,
// Diagnostic) closely enough that the suite can be ported to the real
// framework by swapping import paths if x/tools ever becomes available.
//
// The suite's three analyzers — determinism, bufown and wirebounds — live in
// subpackages and are wired together by cmd/imitatorvet. See DESIGN.md
// ("Static invariants") for the contracts they enforce.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("determinism").
	Name string
	// Doc is the analyzer's one-paragraph contract.
	Doc string
	// Directive is the suppression key: a comment of the form
	//
	//	//imitator:<Directive>-ok <reason>
	//
	// on (or immediately above) a flagged line suppresses this analyzer's
	// diagnostics there. Empty means the analyzer cannot be suppressed.
	Directive string
	// Annotations lists additional bare //imitator:<key> comment keys the
	// analyzer consumes that are not suppressions (hotalloc's "hotpath"
	// scope marker). Run treats them as known when flagging misspelled
	// directives.
	Annotations []string
	// Run performs the check on one package, reporting via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run executes the analyzers over one loaded package, applies suppression
// directives, and returns the surviving diagnostics sorted by position.
// Malformed directives (missing reason) are themselves reported.
//
// _test.go files are excluded by policy: the invariants gate production
// code, while tests deliberately exercise violations (leaking a pool buffer
// to assert allocation behavior, wall-clock watchdog timeouts). This also
// keeps standalone mode and `go vet -vettool` mode — which feeds the test
// variant of each package — in agreement.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	dirs := collectDirectives(pkg.Fset, files)
	var out []Diagnostic
	for _, d := range dirs {
		if d.reason == "" {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Message:  fmt.Sprintf("imitator:%s-ok directive requires a reason", d.key),
				Analyzer: "directive",
			})
		}
	}
	out = append(out, checkUnknownKeys(pkg.Fset, files, analyzers)...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if a.Directive != "" && suppressed(dirs, pkg.Fset, a.Directive, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// checkUnknownKeys flags //imitator: comments whose key is neither a
// suppression key of a running analyzer nor a declared bare annotation: a
// typo like //imitator:hotalloc-okay or //imitator:hotpaths would otherwise
// silently suppress nothing (or scope nothing) and rot in place.
func checkUnknownKeys(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	names := make([]string, 0, len(analyzers)*2)
	for _, a := range analyzers {
		if a.Directive != "" {
			known[a.Directive+"-ok"] = true
			names = append(names, a.Directive+"-ok")
		}
		for _, k := range a.Annotations {
			known[k] = true
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				key, _, _ := strings.Cut(strings.TrimPrefix(c.Text, directivePrefix), " ")
				if known[key] {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      c.Pos(),
					Message:  fmt.Sprintf("unknown directive imitator:%s; known keys: %s", key, strings.Join(names, ", ")),
					Analyzer: "directive",
				})
			}
		}
	}
	return out
}

// directive is one parsed //imitator:<key>-ok comment.
type directive struct {
	pos    token.Pos
	file   string
	line   int  // line the comment sits on
	own    bool // comment is alone on its line (suppresses the next line too)
	key    string
	reason string
}

const directivePrefix = "//imitator:"

// collectDirectives scans every comment in the package for suppression
// directives. A directive written at the end of a code line suppresses that
// line; a directive on its own line suppresses the following line as well
// (the conventional "annotation above the statement" placement).
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				key, reason, _ := strings.Cut(rest, " ")
				if !strings.HasSuffix(key, "-ok") {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, directive{
					pos:    c.Pos(),
					file:   pos.Filename,
					line:   pos.Line,
					own:    pos.Column == 1 || startsLine(fset, f, c),
					key:    strings.TrimSuffix(key, "-ok"),
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// startsLine reports whether comment c is the first token on its line.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Filename == cpos.Filename && p.Line == cpos.Line && p.Column < cpos.Column {
			first = false
		}
		return first
	})
	return first
}

// suppressed reports whether a diagnostic at pos is covered by a directive
// with the given key: same line, or the line after an own-line directive.
func suppressed(dirs []directive, fset *token.FileSet, key string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range dirs {
		if d.key != key || d.reason == "" || d.file != p.Filename {
			continue
		}
		if d.line == p.Line {
			return true
		}
		if d.own && d.line+1 == p.Line {
			return true
		}
	}
	return false
}
