package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0.4, 1.2); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 1000, 2.0)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// With alpha=2 the head must dominate: item 0 ~ 6x item 1 would be too
	// strict; require monotone-ish decay head >> tail.
	if counts[0] < 4*counts[3] {
		t.Errorf("expected strong head skew: counts[0]=%d counts[3]=%d", counts[0], counts[3])
	}
	tail := 0
	for _, c := range counts[500:] {
		tail += c
	}
	if tail > counts[0] {
		t.Errorf("tail mass %d exceeds head mass %d", tail, counts[0])
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1.0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("trivial Hash64 collision")
	}
}

func TestHash2Distribution(t *testing.T) {
	// Hash2 drives hash partitioning; check bucket spread over 8 buckets.
	counts := make([]int, 8)
	for i := uint64(0); i < 8000; i++ {
		counts[Hash2(i, 77)%8]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("bucket %d count %d outside [800,1200]", i, c)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 63, 2, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
