// Package rng provides small, fast, deterministic random number generators
// used throughout the simulator. Determinism matters: every dataset,
// partitioning decision and failure injection in this repository is a pure
// function of a seed, so experiments are exactly reproducible.
package rng

import "math"

// Source is a splitmix64-seeded xoshiro256** generator. It is not safe for
// concurrent use; create one Source per goroutine.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, as recommended by
// the xoshiro authors to avoid correlated low-entropy seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitmix64(sm)
	}
	return &src
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t & mask
	hi1 := t >> 32
	lo1 += a0 * b1
	hi = a1*b1 + hi1 + (lo1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a log-normal variate with the given mu and sigma of the
// underlying normal. The paper uses mu=0.4, sigma=1.2 (Facebook interaction
// weights) for synthetic SSSP edge weights.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^alpha using inverse-CDF on a precomputed table. For repeated
// sampling use NewZipf.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over [0, n) with exponent alpha > 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed sample.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash64 is a stateless mix of a 64-bit value (splitmix64 finalizer). It is
// used for hash partitioning so that placement does not depend on iteration
// order.
func Hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash2 mixes two 64-bit values into one.
func Hash2(a, b uint64) uint64 {
	return Hash64(a*0x9e3779b97f4a7c15 + Hash64(b))
}
