// custom-algorithm shows how to implement a new vertex program against the
// imitator.Program interface and run it fault-tolerantly without touching
// the engine — the paper's "no source code changes to graph algorithms"
// property. The program computes each vertex's in-neighborhood weighted
// degree percentile rank ("local influence"): influence(v) converges to the
// share of v's in-neighbors whose influence is below v's own, seeded from
// normalized degree.
package main

import (
	"fmt"
	"log"
	"sort"

	"imitator/pkg/imitator"
)

// influence is the custom vertex program. V = float64 (current influence
// score), A = [2]float64 flattened as []float64{below, total}.
type influence struct {
	maxDeg float64
}

var _ imitator.Program[float64, []float64] = (*influence)(nil)

func (p *influence) Name() string              { return "influence" }
func (p *influence) AlwaysActive() bool        { return true }
func (p *influence) CanRecomputeSelfish() bool { return false }

func (p *influence) Init(_ imitator.VertexID, info imitator.VertexInfo) (float64, bool) {
	return float64(info.InDeg) / p.maxDeg, true
}

// Gather: contribute (1 if src's score is below an implicit threshold,
// carried as raw score so Apply can compare, 1 total). To keep the
// accumulator associative we ship (sum of src scores, count) and compare
// against the mean in Apply.
func (p *influence) Gather(_ imitator.Edge, src float64, _ imitator.VertexInfo) []float64 {
	return []float64{src, 1}
}

func (p *influence) Merge(a, b []float64) []float64 {
	return []float64{a[0] + b[0], a[1] + b[1]}
}

// Apply: move the score toward "how far above the neighborhood mean am I",
// damped for stability.
func (p *influence) Apply(_ imitator.VertexID, info imitator.VertexInfo, old float64, acc []float64, hasAcc bool, _ int) (float64, bool) {
	if !hasAcc || acc[1] == 0 {
		return old, true
	}
	mean := acc[0] / acc[1]
	target := 0.5 + (old-mean)/2
	if target < 0 {
		target = 0
	}
	if target > 1 {
		target = 1
	}
	return old*0.5 + target*0.5, true
}

func (p *influence) ValueCodec() imitator.Codec[float64] { return imitator.Float64Codec{} }
func (p *influence) AccCodec() imitator.Codec[[]float64] { return imitator.VecCodec{Dim: 2} }

func main() {
	g := imitator.MustLoadDataset("dblp")
	maxDeg := 1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(imitator.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	prog := &influence{maxDeg: float64(maxDeg)}

	// The custom program runs under the same fault-tolerance machinery as
	// the built-ins: crash two nodes, recover by migration.
	cfg := imitator.New(
		imitator.WithNodes(6),
		imitator.WithFTStrategy(imitator.Migration(
			imitator.ReplicationK(2), imitator.ReplicationSelfish(false))),
		imitator.WithIterations(12),
		imitator.WithFailures(imitator.Crash(6, imitator.FailBeforeBarrier, 1, 4)),
	)

	res, err := imitator.Run(cfg, g, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom %q program: %d iterations, %.3f simulated seconds\n",
		prog.Name(), res.Iterations, res.SimSeconds)
	for _, r := range res.Recoveries {
		fmt.Printf("survived: %s\n", r)
	}

	type scored struct {
		v imitator.VertexID
		s float64
	}
	top := make([]scored, g.NumVertices())
	for v, s := range res.Values {
		top[v] = scored{imitator.VertexID(v), s}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].s > top[b].s })
	fmt.Println("most locally influential vertices:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %6d  influence %.3f (in-degree %d)\n", t.v, t.s, g.InDegree(t.v))
	}
}
