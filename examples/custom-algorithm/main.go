// custom-algorithm shows how to implement a new vertex program against the
// core.Program interface and run it fault-tolerantly without touching the
// engine — the paper's "no source code changes to graph algorithms"
// property. The program computes each vertex's in-neighborhood weighted
// degree percentile rank ("local influence"): influence(v) converges to the
// share of v's in-neighbors whose influence is below v's own, seeded from
// normalized degree.
package main

import (
	"fmt"
	"log"
	"sort"

	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// influence is the custom vertex program. V = float64 (current influence
// score), A = [2]float64 flattened as []float64{below, total}.
type influence struct {
	maxDeg float64
}

var _ core.Program[float64, []float64] = (*influence)(nil)

func (p *influence) Name() string              { return "influence" }
func (p *influence) AlwaysActive() bool        { return true }
func (p *influence) CanRecomputeSelfish() bool { return false }

func (p *influence) Init(_ graph.VertexID, info core.VertexInfo) (float64, bool) {
	return float64(info.InDeg) / p.maxDeg, true
}

// Gather: contribute (1 if src's score is below an implicit threshold,
// carried as raw score so Apply can compare, 1 total). To keep the
// accumulator associative we ship (sum of src scores, count) and compare
// against the mean in Apply.
func (p *influence) Gather(_ graph.Edge, src float64, _ core.VertexInfo) []float64 {
	return []float64{src, 1}
}

func (p *influence) Merge(a, b []float64) []float64 {
	return []float64{a[0] + b[0], a[1] + b[1]}
}

// Apply: move the score toward "how far above the neighborhood mean am I",
// damped for stability.
func (p *influence) Apply(_ graph.VertexID, info core.VertexInfo, old float64, acc []float64, hasAcc bool, _ int) (float64, bool) {
	if !hasAcc || acc[1] == 0 {
		return old, true
	}
	mean := acc[0] / acc[1]
	target := 0.5 + (old-mean)/2
	if target < 0 {
		target = 0
	}
	if target > 1 {
		target = 1
	}
	return old*0.5 + target*0.5, true
}

func (p *influence) ValueCodec() core.Codec[float64] { return core.Float64Codec{} }
func (p *influence) AccCodec() core.Codec[[]float64] { return core.VecCodec{Dim: 2} }

func main() {
	g := datasets.MustLoad("dblp")
	maxDeg := 1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	prog := &influence{maxDeg: float64(maxDeg)}

	// The custom program runs under the same fault-tolerance machinery as
	// the built-ins: crash two nodes, recover by migration.
	cfg := core.DefaultConfig(core.EdgeCutMode, 6)
	cfg.Recovery = core.RecoverMigration
	cfg.FT.K = 2
	cfg.FT.SelfishOpt = false
	cfg.MaxIter = 12
	cfg.Failures = []core.FailureSpec{{
		Iteration: 6, Phase: core.FailBeforeBarrier, Nodes: []int{1, 4},
	}}

	cluster, err := core.NewCluster[float64, []float64](cfg, g, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom %q program: %d iterations, %.3f simulated seconds\n",
		prog.Name(), res.Iterations, res.SimSeconds)
	for _, r := range res.Recoveries {
		fmt.Printf("survived: %s\n", r)
	}

	type scored struct {
		v graph.VertexID
		s float64
	}
	top := make([]scored, g.NumVertices())
	for v, s := range res.Values {
		top[v] = scored{graph.VertexID(v), s}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].s > top[b].s })
	fmt.Println("most locally influential vertices:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %6d  influence %.3f (in-degree %d)\n", t.v, t.s, g.InDegree(t.v))
	}
}
