// pagerank-failover reproduces the paper's Fig 12 case study as a runnable
// program: PageRank on an LJournal-like graph under three fault-tolerance
// settings, with one machine crashing between iterations 6 and 7. It prints
// each configuration's timeline so the recovery-cost differences are
// visible: Migration is fastest, Rebirth close behind, checkpointing pays a
// long reload plus replayed iterations.
package main

import (
	"fmt"
	"log"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

const (
	nodes    = 8
	iters    = 20
	failIter = 6
)

func main() {
	g := datasets.MustLoad("ljournal")
	fmt.Printf("PageRank on %d vertices / %d edges, %d nodes, failure after iteration %d\n\n",
		g.NumVertices(), g.NumEdges(), nodes, failIter)

	configs := []struct {
		label string
		cfg   core.Config
		fail  bool
	}{
		{"BASE (no FT, no failure)", base(), false},
		{"REP (no failure)", rep(core.RecoverRebirth), false},
		{"CKPT/4 (no failure)", ckpt(4), false},
		{"REP + Rebirth", rep(core.RecoverRebirth), true},
		{"REP + Migration", rep(core.RecoverMigration), true},
		{"CKPT/4 + recovery", ckpt(4), true},
	}
	for _, c := range configs {
		cfg := c.cfg
		if c.fail {
			cfg.Failures = []core.FailureSpec{{
				Iteration: failIter, Phase: core.FailAfterBarrier, Nodes: []int{1},
			}}
		}
		res := run(g, cfg)
		recovery := 0.0
		for _, r := range res.Recoveries {
			recovery += r.TotalSeconds()
		}
		fmt.Printf("%-26s total %7.3f s   recovery %6.3f s   checkpoints %5.3f s\n",
			c.label, res.SimSeconds, recovery, res.CheckpointSeconds)
		if c.fail {
			printTimeline(res)
		}
	}
}

func base() core.Config {
	cfg := core.DefaultConfig(core.EdgeCutMode, nodes)
	cfg.FT = core.FTConfig{}
	cfg.Recovery = core.RecoverNone
	cfg.MaxIter = iters
	return cfg
}

func rep(rk core.RecoveryKind) core.Config {
	cfg := base()
	cfg.FT = core.FTConfig{Enabled: true, K: 1, SelfishOpt: true}
	cfg.Recovery = rk
	cfg.MaxRebirths = 2
	return cfg
}

func ckpt(interval int) core.Config {
	cfg := base()
	cfg.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: interval}
	cfg.Recovery = core.RecoverCheckpoint
	cfg.MaxRebirths = 2
	return cfg
}

func run(g *graph.Graph, cfg core.Config) *core.Result[float64] {
	cluster, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewPageRank(g.NumVertices()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func printTimeline(res *core.Result[float64]) {
	fmt.Println("  timeline (simulated seconds):")
	for _, ev := range res.Trace {
		bar := int(ev.Duration() * 400)
		if bar > 60 {
			bar = 60
		}
		if bar < 1 {
			bar = 1
		}
		fmt.Printf("    %8.3f  %-10s iter %2d  %s\n", ev.Start, ev.Kind, ev.Iter, bars(bar))
	}
	fmt.Println()
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
