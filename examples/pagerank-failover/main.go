// pagerank-failover reproduces the paper's Fig 12 case study as a runnable
// program: PageRank on an LJournal-like graph under the four fault-tolerance
// strategies, with one machine crashing between iterations 6 and 7. It prints
// each configuration's timeline so the recovery-cost differences are
// visible: Migration is fastest, Rebirth close behind, logged recovery pays
// only the reborn node's replay, and checkpointing pays a long reload plus
// replayed iterations on every node.
package main

import (
	"fmt"
	"log"

	"imitator/pkg/imitator"
)

const (
	nodes    = 8
	iters    = 20
	failIter = 6
)

func main() {
	g := imitator.MustLoadDataset("ljournal")
	fmt.Printf("PageRank on %d vertices / %d edges, %d nodes, failure after iteration %d\n\n",
		g.NumVertices(), g.NumEdges(), nodes, failIter)

	configs := []struct {
		label string
		cfg   imitator.Config
		fail  bool
		lossy bool
	}{
		{"BASE (no FT, no failure)", job(imitator.NoRecovery()), false, false},
		{"REP (no failure)", job(imitator.Replication()), false, false},
		{"CKPT/4 (no failure)", job(imitator.Checkpoint(4)), false, false},
		{"REP + Rebirth", job(imitator.Replication()), true, false},
		{"REP + Migration", job(imitator.Migration()), true, false},
		{"CKPT/4 + recovery", job(imitator.Checkpoint(4)), true, false},
		// Log-based failure-confined recovery: only the reborn node replays
		// its own logs, the survivors never re-execute a superstep.
		{"LOGGED/4 + replay", job(imitator.LoggedRecovery(imitator.LoggedCompactEvery(4))), true, false},
		// The same crash, but now the network also drops and reorders
		// frames: the reliable-delivery layer retransmits through it and
		// the answer stays bit-identical — only the timeline stretches.
		{"REP + Rebirth (lossy net)", job(imitator.Replication()), true, true},
	}
	for _, c := range configs {
		cfg := c.cfg
		if c.fail {
			cfg.Chaos = imitator.FailureSchedule{
				imitator.Crash(failIter, imitator.FailAfterBarrier, 1),
			}
		}
		if c.lossy {
			cfg.Chaos = append(cfg.Chaos,
				imitator.Drop(1, 0, 2, 0.3),
				imitator.Reorder(1, 3, 4, 0.5),
			)
			cfg.ChaosSeed = 42
		}
		res := run(g, cfg)
		recovery := 0.0
		for _, r := range res.Recoveries {
			recovery += r.TotalSeconds()
		}
		fmt.Printf("%-26s total %7.3f s   recovery %6.3f s   checkpoints %5.3f s\n",
			c.label, res.SimSeconds, recovery, res.CheckpointSeconds)
		if o := res.Omission; o != nil {
			fmt.Printf("%-26s %d retransmits, %d frames re-sequenced\n", "", o.Retransmits, o.Reordered)
		}
		if c.fail {
			printTimeline(res)
		}
	}
}

// job builds the shared cluster shape; the strategy is the only thing the
// configurations vary.
func job(strat imitator.FTStrategy) imitator.Config {
	return imitator.New(
		imitator.WithNodes(nodes),
		imitator.WithIterations(iters),
		imitator.WithFTStrategy(strat),
		imitator.WithMaxRebirths(2),
	)
}

func run(g *imitator.Graph, cfg imitator.Config) *imitator.Result[float64] {
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func printTimeline(res *imitator.Result[float64]) {
	fmt.Println("  timeline (simulated seconds):")
	for _, ev := range res.Trace {
		bar := int(ev.Duration() * 400)
		if bar > 60 {
			bar = 60
		}
		if bar < 1 {
			bar = 1
		}
		fmt.Printf("    %8.3f  %-10s iter %2d  %s\n", ev.Start, ev.Kind, ev.Iter, bars(bar))
	}
	fmt.Println()
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
