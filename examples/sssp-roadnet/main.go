// sssp-roadnet computes single-source shortest paths over the RoadCA-like
// weighted road network on a vertex-cut (PowerLyra-style) cluster using
// hybrid-cut partitioning, and demonstrates Migration-based recovery: two
// machines crash mid-run and the survivors absorb their workload — no
// standby machine needed.
package main

import (
	"fmt"
	"log"
	"math"

	"imitator/internal/algorithms"
	"imitator/internal/core"
	"imitator/internal/datasets"
	"imitator/internal/graph"
)

func main() {
	g := datasets.MustLoad("roadca")
	const source graph.VertexID = 0

	cfg := core.DefaultConfig(core.VertexCutMode, 6)
	cfg.Partitioner = core.PartHybrid
	cfg.FT = core.FTConfig{Enabled: true, K: 2, SelfishOpt: false}
	cfg.Recovery = core.RecoverMigration
	cfg.MaxIter = 400 // road networks have large diameters
	cfg.Failures = []core.FailureSpec{{
		Iteration: 40, Phase: core.FailBeforeBarrier, Nodes: []int{2, 4},
	}}

	cluster, err := core.NewCluster[float64, float64](cfg, g, algorithms.NewSSSP(source))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Run()
	if err != nil {
		log.Fatal(err)
	}

	reachable, sum, maxDist := 0, 0.0, 0.0
	for _, d := range res.Values {
		if !math.IsInf(d, 1) {
			reachable++
			sum += d
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("SSSP from vertex %d over %d vertices / %d edges (weighted road lattice)\n",
		source, g.NumVertices(), g.NumEdges())
	fmt.Printf("reachable: %d (%.1f%%), mean distance %.2f, eccentricity %.2f\n",
		reachable, 100*float64(reachable)/float64(g.NumVertices()),
		sum/float64(reachable), maxDist)
	for _, r := range res.Recoveries {
		fmt.Printf("survived double failure: %s\n", r)
	}
	fmt.Printf("job took %.3f simulated seconds over %d supersteps\n", res.SimSeconds, res.Iterations)

	fmt.Println("sample distances:")
	for _, v := range []graph.VertexID{1, 100, 5000, 20000, 31999} {
		fmt.Printf("  vertex %6d: %.3f\n", v, res.Values[v])
	}
}
