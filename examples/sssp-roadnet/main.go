// sssp-roadnet computes single-source shortest paths over the RoadCA-like
// weighted road network on a vertex-cut (PowerLyra-style) cluster using
// hybrid-cut partitioning, and demonstrates Migration-based recovery: two
// machines crash mid-run and the survivors absorb their workload — no
// standby machine needed.
package main

import (
	"fmt"
	"log"
	"math"

	"imitator/pkg/imitator"
)

func main() {
	g := imitator.MustLoadDataset("roadca")
	const source imitator.VertexID = 0

	cfg := imitator.New(
		imitator.WithMode(imitator.VertexCutMode),
		imitator.WithNodes(6),
		imitator.WithPartitioner(imitator.PartHybrid),
		imitator.WithFTStrategy(imitator.Migration(
			imitator.ReplicationK(2), imitator.ReplicationSelfish(false))),
		imitator.WithIterations(400), // road networks have large diameters
		imitator.WithFailures(imitator.Crash(40, imitator.FailBeforeBarrier, 2, 4)),
	)

	res, err := imitator.Run(cfg, g, imitator.NewSSSP(source))
	if err != nil {
		log.Fatal(err)
	}

	reachable, sum, maxDist := 0, 0.0, 0.0
	for _, d := range res.Values {
		if !math.IsInf(d, 1) {
			reachable++
			sum += d
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("SSSP from vertex %d over %d vertices / %d edges (weighted road lattice)\n",
		source, g.NumVertices(), g.NumEdges())
	fmt.Printf("reachable: %d (%.1f%%), mean distance %.2f, eccentricity %.2f\n",
		reachable, 100*float64(reachable)/float64(g.NumVertices()),
		sum/float64(reachable), maxDist)
	for _, r := range res.Recoveries {
		fmt.Printf("survived double failure: %s\n", r)
	}
	fmt.Printf("job took %.3f simulated seconds over %d supersteps\n", res.SimSeconds, res.Iterations)

	fmt.Println("sample distances:")
	for _, v := range []imitator.VertexID{1, 100, 5000, 20000, 31999} {
		fmt.Printf("  vertex %6d: %.3f\n", v, res.Values[v])
	}
}
