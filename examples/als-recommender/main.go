// als-recommender trains a collaborative-filtering model with alternating
// least squares on the SYN-GL-like bipartite rating graph, surviving a
// machine crash via Rebirth recovery, then prints recommendations for a
// sample user. Demonstrates vector-valued vertex programs (latent factor
// solves) on the fault-tolerant engine.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"imitator/pkg/imitator"
)

const (
	numUsers = 7000 // see the syn-gl catalog entry
	dim      = 8
	lambda   = 0.05
)

func main() {
	g := imitator.MustLoadDataset("syn-gl")
	prog := imitator.NewALS(numUsers, dim, lambda)

	cfg := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(10),
		imitator.WithFailures(imitator.Crash(4, imitator.FailBeforeBarrier, 3)),
	)

	res, err := imitator.Run(cfg, g, prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ALS (d=%d, lambda=%.2f) on %d users x %d items, %d ratings\n",
		dim, lambda, numUsers, g.NumVertices()-numUsers, g.NumEdges()/2)
	fmt.Printf("trained %d iterations in %.3f simulated seconds; RMSE %.4f\n",
		res.Iterations, res.SimSeconds, rmse(g, res.Values))
	for _, r := range res.Recoveries {
		fmt.Printf("survived crash: %s\n", r)
	}

	// Recommend unrated items for one user.
	const user imitator.VertexID = 42
	rated := map[imitator.VertexID]bool{}
	g.OutEdges(user, func(_ int, e imitator.Edge) { rated[e.Dst] = true })
	type scored struct {
		item  imitator.VertexID
		score float64
	}
	var recs []scored
	for item := numUsers; item < g.NumVertices(); item++ {
		it := imitator.VertexID(item)
		if rated[it] {
			continue
		}
		recs = append(recs, scored{it, dot(res.Values[user], res.Values[it])})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].score > recs[b].score })
	fmt.Printf("top recommendations for user %d (%d items already rated):\n", user, len(rated))
	for _, r := range recs[:5] {
		fmt.Printf("  item %5d  predicted rating %.2f\n", r.item, r.score)
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func rmse(g *imitator.Graph, values [][]float64) float64 {
	var se float64
	var n int
	for _, e := range g.Edges() {
		if int(e.Src) >= numUsers {
			continue
		}
		d := dot(values[e.Src], values[e.Dst]) - e.Weight
		se += d * d
		n++
	}
	return math.Sqrt(se / float64(n))
}
