// Quickstart: run PageRank on a simulated 4-node cluster with
// replication-based fault tolerance, crash a machine mid-run, and watch
// Imitator recover it from the vertex replicas.
package main

import (
	"fmt"
	"log"
	"sort"

	"imitator/pkg/imitator"
)

func main() {
	// 1. Load a dataset (a scaled GWeb-like power-law web graph).
	g := imitator.MustLoadDataset("gweb")
	fmt.Printf("loaded %d vertices / %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. Configure a 4-node edge-cut cluster with fault tolerance on and
	// Rebirth recovery, and schedule node 2 to crash during iteration 5.
	cfg := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(10),
		imitator.WithFailures(imitator.Crash(5, imitator.FailBeforeBarrier, 2)),
	)

	// 3. Run PageRank.
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report: the failure was recovered in-memory from replicas; the
	// job finished all 10 iterations with the correct answer.
	fmt.Printf("finished %d iterations in %.3f simulated seconds\n", res.Iterations, res.SimSeconds)
	for _, r := range res.Recoveries {
		fmt.Printf("recovered: %s\n", r)
	}

	type ranked struct {
		v    int
		rank float64
	}
	top := make([]ranked, g.NumVertices())
	for v, r := range res.Values {
		top[v] = ranked{v, r}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].rank > top[b].rank })
	fmt.Println("top 5 vertices by PageRank:")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %6d  rank %.3f\n", t.v, t.rank)
	}
}
