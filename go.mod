module imitator

go 1.22
