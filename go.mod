module imitator

go 1.24
