package imitator_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its table via internal/experiments and reports the
// headline numbers as custom metrics, so `go test -bench=.` reproduces the
// whole evaluation. A full pass over a figure can take seconds to minutes;
// use -benchtime=1x (the default 1s budget already yields b.N==1 for the
// heavy ones) and see cmd/bench for the rendered tables.

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"imitator/internal/experiments"
)

func benchOptions() experiments.Options {
	o := experiments.Defaults()
	// Results are worker-count invariant, so benchmarks always use the
	// full machine; -cpu therefore scales real wall clock, not output.
	o.Workers = runtime.GOMAXPROCS(0)
	if testing.Short() {
		o.Small = true
		o.Nodes = 4
		o.Iters = 4
	}
	return o
}

// runExperiment executes the experiment once per b.N and reports a metric
// extracted from the resulting table.
func runExperiment(b *testing.B, fn func(experiments.Options) (*experiments.Table, error),
	metric func(*experiments.Table) (float64, string)) {
	b.Helper()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := fn(o)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			if v, unit := metric(t); unit != "" {
				b.ReportMetric(v, unit)
			}
		}
	}
}

// cell parses a float prefix out of a table cell like "1.234" or "+5.6%".
func cell(t *experiments.Table, row, col int) float64 {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return 0
	}
	s := strings.TrimSuffix(strings.TrimPrefix(t.Rows[row][col], "+"), "%")
	s = strings.Fields(s)[0]
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, experiments.Table1Datasets, func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "datasets"
	})
}

func BenchmarkFig2aCheckpointCost(b *testing.B) {
	runExperiment(b, experiments.Fig2aCheckpointCost, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "ckpt-sec"
	})
}

func BenchmarkFig2bCheckpointIntervals(b *testing.B) {
	runExperiment(b, experiments.Fig2bCheckpointIntervals, func(t *experiments.Table) (float64, string) {
		return cell(t, 1, 2), "interval1-overhead-%"
	})
}

func BenchmarkFig2cCheckpointRecovery(b *testing.B) {
	runExperiment(b, experiments.Fig2cCheckpointRecovery, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 4), "recovery-sec"
	})
}

func BenchmarkFig3Replicas(b *testing.B) {
	runExperiment(b, experiments.Fig3Replicas, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 1), "noreplica-%"
	})
}

func BenchmarkFig7RuntimeOverheadEdgeCut(b *testing.B) {
	runExperiment(b, experiments.Fig7RuntimeOverheadEdgeCut, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "rep-overhead-%"
	})
}

func BenchmarkFig8SelfishOptimization(b *testing.B) {
	runExperiment(b, experiments.Fig8SelfishOptimization, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 3), "redundant-msgs-%"
	})
}

func BenchmarkTable2RecoveryEdgeCut(b *testing.B) {
	runExperiment(b, experiments.Table2RecoveryEdgeCut, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "rebirth-sec"
	})
}

func BenchmarkFig9RecoveryScalability(b *testing.B) {
	runExperiment(b, experiments.Fig9RecoveryScalability, func(t *experiments.Table) (float64, string) {
		return cell(t, len(t.Rows)-1, 1), "rebirth-sec-maxnodes"
	})
}

func BenchmarkFig10Fennel(b *testing.B) {
	runExperiment(b, experiments.Fig10Fennel, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "fennel-rf"
	})
}

func BenchmarkFig11MultiFailureEdgeCut(b *testing.B) {
	runExperiment(b, experiments.Fig11MultiFailureEdgeCut, func(t *experiments.Table) (float64, string) {
		return cell(t, 2, 1), "k3-overhead-%"
	})
}

func BenchmarkTable3MemoryEdgeCut(b *testing.B) {
	runExperiment(b, experiments.Table3MemoryEdgeCut, func(t *experiments.Table) (float64, string) {
		return cell(t, len(t.Rows)-1, 4), "ft3-mem-overhead-%"
	})
}

func BenchmarkFig12CaseStudy(b *testing.B) {
	runExperiment(b, experiments.Fig12CaseStudy, func(t *experiments.Table) (float64, string) {
		return cell(t, 4, 2), "migration-recovery-sec"
	})
}

func BenchmarkFig13RuntimeOverheadVertexCut(b *testing.B) {
	runExperiment(b, experiments.Fig13RuntimeOverheadVertexCut, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "rep-overhead-%"
	})
}

func BenchmarkTable5RecoveryVertexCut(b *testing.B) {
	runExperiment(b, experiments.Table5RecoveryVertexCut, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "rebirth-sec"
	})
}

func BenchmarkFig14PartitioningVertexCut(b *testing.B) {
	runExperiment(b, experiments.Fig14PartitioningVertexCut, func(t *experiments.Table) (float64, string) {
		return cell(t, len(t.Rows)-1, 1), "hybrid-rf"
	})
}

func BenchmarkFig15MultiFailureVertexCut(b *testing.B) {
	runExperiment(b, experiments.Fig15MultiFailureVertexCut, func(t *experiments.Table) (float64, string) {
		return cell(t, 2, 1), "k3-overhead-%"
	})
}

func BenchmarkTable6CommunicationVertexCut(b *testing.B) {
	runExperiment(b, experiments.Table6CommunicationVertexCut, func(t *experiments.Table) (float64, string) {
		return cell(t, len(t.Rows)-1, 4), "hybrid-ft3-comm-%"
	})
}

func BenchmarkTable7MemoryVertexCut(b *testing.B) {
	runExperiment(b, experiments.Table7MemoryVertexCut, func(t *experiments.Table) (float64, string) {
		return cell(t, len(t.Rows)-1, 4), "hybrid-ft3-mem-%"
	})
}

func BenchmarkYoungModelEfficiency(b *testing.B) {
	runExperiment(b, experiments.YoungModelEfficiency, func(t *experiments.Table) (float64, string) {
		return cell(t, 1, 3), "rep-efficiency-%"
	})
}

func BenchmarkAblationMirrorPlacement(b *testing.B) {
	runExperiment(b, experiments.AblationMirrorPlacement, func(t *experiments.Table) (float64, string) {
		return cell(t, 0, 2), "balanced-migration-sec"
	})
}

func BenchmarkAblationPositionalRecovery(b *testing.B) {
	runExperiment(b, experiments.AblationPositionalRecovery, func(t *experiments.Table) (float64, string) {
		return cell(t, 3, 1), "reconstruct-sec"
	})
}
