// Package imitator is a from-scratch Go reproduction of "Replication-Based
// Fault-Tolerance for Large-Scale Graph Processing" (Chen et al., DSN 2014;
// extended in IEEE TPDS 29(7), 2018).
//
// The library lives under internal/: the Imitator runtime (internal/core)
// implements edge-cut (Cyclops-style) and vertex-cut (PowerLyra-style) BSP
// graph processing with replication-based fault tolerance — fault-tolerant
// replicas, full-state mirrors, the selfish-vertex optimization, and
// Rebirth/Migration/checkpoint recovery — on a simulated cluster
// (internal/netsim, internal/dfs, internal/coord) with a calibrated cost
// model (internal/costmodel).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the measured results and
// README.md for a tour.
package imitator
