package imitator_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"imitator/internal/core"
	"imitator/pkg/imitator"
)

func ring(t *testing.T, n int) *imitator.Graph {
	t.Helper()
	edges := make([]imitator.Edge, 0, 2*n)
	for i := 0; i < n; i++ {
		edges = append(edges,
			imitator.Edge{Src: imitator.VertexID(i), Dst: imitator.VertexID((i + 1) % n), Weight: 1},
			imitator.Edge{Src: imitator.VertexID(i), Dst: imitator.VertexID((i + 7) % n), Weight: 1},
		)
	}
	g, err := imitator.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestNewDefaults pins the facade's defaults to the engine's DefaultConfig
// so the two entrypoints can never drift apart silently.
func TestNewDefaults(t *testing.T) {
	got := imitator.New()
	want := core.DefaultConfig(core.EdgeCutMode, 8)
	if len(got.Failures) != 0 {
		t.Errorf("New() schedules failures: %+v", got.Failures)
	}
	got.Failures, want.Failures = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("New() = %+v, want DefaultConfig = %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("New() does not validate: %v", err)
	}
}

// TestNewModeDefaultPartitioner checks the partitioner tracks the final
// mode regardless of option order, and that an explicit choice wins.
func TestNewModeDefaultPartitioner(t *testing.T) {
	if p := imitator.New().Partitioner; p != imitator.PartHash {
		t.Errorf("edge-cut default partitioner = %v, want hash", p)
	}
	if p := imitator.New(imitator.WithMode(imitator.VertexCutMode)).Partitioner; p != imitator.PartHybrid {
		t.Errorf("vertex-cut default partitioner = %v, want hybrid", p)
	}
	cfg := imitator.New(
		imitator.WithPartitioner(imitator.PartGrid),
		imitator.WithMode(imitator.VertexCutMode),
	)
	if cfg.Partitioner != imitator.PartGrid {
		t.Errorf("explicit partitioner overridden: %v", cfg.Partitioner)
	}
}

func TestOptions(t *testing.T) {
	cfg := imitator.New(
		imitator.WithMode(imitator.VertexCutMode),
		imitator.WithNodes(6),
		imitator.WithIterations(17),
		imitator.WithWorkers(4),
		imitator.WithFTStrategy(imitator.Migration(
			imitator.ReplicationK(2), imitator.ReplicationSelfish(false))),
		imitator.WithMaxRebirths(9),
		imitator.WithFailures(
			imitator.Crash(3, imitator.FailBeforeBarrier, 1, 4),
			imitator.Crash(5, imitator.FailAfterBarrier, 2),
		),
	)
	if cfg.Mode != imitator.VertexCutMode || cfg.NumNodes != 6 || cfg.MaxIter != 17 {
		t.Errorf("mode/nodes/iters wrong: %+v", cfg)
	}
	if cfg.WorkersPerNode != 4 {
		t.Errorf("WorkersPerNode = %d, want 4", cfg.WorkersPerNode)
	}
	if !cfg.FT.Enabled || cfg.FT.K != 2 || cfg.FT.SelfishOpt {
		t.Errorf("FT wrong: %+v", cfg.FT)
	}
	if cfg.Recovery != imitator.RecoverMigration || cfg.MaxRebirths != 9 {
		t.Errorf("recovery wrong: %v/%d", cfg.Recovery, cfg.MaxRebirths)
	}
	if len(cfg.Chaos) != 2 ||
		cfg.Chaos[0].Iteration != 3 || len(cfg.Chaos[0].Nodes) != 2 ||
		cfg.Chaos[1].Phase != imitator.FailAfterBarrier {
		t.Errorf("failures wrong: %+v", cfg.Chaos)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("composed config invalid: %v", err)
	}
}

func TestCheckpointOptions(t *testing.T) {
	cfg := imitator.New(imitator.WithFTStrategy(imitator.Checkpoint(3)))
	if cfg.Recovery != imitator.RecoverCheckpoint || cfg.Checkpoint.Interval != 3 {
		t.Errorf("Checkpoint(3) wrong: %+v", cfg)
	}
	if cfg.FT.Enabled {
		t.Error("Checkpoint strategy left replication FT on")
	}
	// Strategies compose in order: snapshots from an earlier Checkpoint
	// survive a later Replication (which only reconfigures the FT layer).
	cfg = imitator.New(
		imitator.WithFTStrategy(imitator.Checkpoint(2)),
		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
	)
	if !cfg.FT.Enabled || !cfg.Checkpoint.Enabled || cfg.Recovery != imitator.RecoverRebirth {
		t.Errorf("checkpoint+replication combination lost a side: %+v", cfg)
	}
}

// TestRunEndToEnd drives the whole facade path: build graph, configure a
// failing run, survive it, and read the results back — without touching
// internal packages.
func TestRunEndToEnd(t *testing.T) {
	g := ring(t, 200)
	cfg := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(8),
		imitator.WithWorkers(2),
		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
		imitator.WithFailures(imitator.Crash(4, imitator.FailBeforeBarrier, 2)),
	)
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != g.NumVertices() {
		t.Fatalf("%d values for %d vertices", len(res.Values), g.NumVertices())
	}
	var sum float64
	for _, v := range res.Values {
		sum += v
	}
	if math.Abs(sum-float64(g.NumVertices())) > 1e-6 {
		t.Errorf("PageRank mass %g, want %d", sum, g.NumVertices())
	}
	if len(res.Recoveries) != 1 || res.Recoveries[0].Kind != "rebirth" {
		t.Fatalf("recoveries = %+v, want one rebirth", res.Recoveries)
	}
	if res.SimSeconds <= 0 || res.Iterations != 8 {
		t.Errorf("sim %.3f s, %d iterations", res.SimSeconds, res.Iterations)
	}
}

// TestRunMatchesCore checks the facade is a zero-cost wrapper: the same
// configuration through pkg/imitator and through internal/core produces
// identical values and traffic.
func TestRunMatchesCore(t *testing.T) {
	g := ring(t, 150)
	cfg := imitator.New(
		imitator.WithMode(imitator.VertexCutMode),
		imitator.WithNodes(4),
		imitator.WithIterations(6),
		imitator.WithFTStrategy(imitator.Migration()),
		imitator.WithFailures(imitator.Crash(3, imitator.FailBeforeBarrier, 1)),
	)
	facade, err := imitator.Run(cfg, g, imitator.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewCluster[float64, float64](cfg, g, imitator.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := range facade.Values {
		if facade.Values[v] != direct.Values[v] {
			t.Fatalf("vertex %d: facade %g != core %g", v, facade.Values[v], direct.Values[v])
		}
	}
	if facade.Metrics.TotalBytes() != direct.Metrics.TotalBytes() {
		t.Errorf("traffic differs: %d != %d",
			facade.Metrics.TotalBytes(), direct.Metrics.TotalBytes())
	}
}

func TestWorkloadAndTimeline(t *testing.T) {
	cfg := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(3),
		imitator.WithFailures(imitator.Crash(1, imitator.FailBeforeBarrier, 1)),
	)
	s, err := imitator.RunWorkload(imitator.Workload{Algo: "cd", Dataset: "dblp", Iters: 3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices == 0 || len(s.Trace) == 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	var sb strings.Builder
	imitator.RenderTimeline(&sb, s.Trace, imitator.TimelineOptions{})
	if !strings.Contains(sb.String(), "recovery") {
		t.Errorf("timeline missing recovery lane:\n%s", sb.String())
	}
	if imitator.TimelineSummary(s.Trace) == "" {
		t.Error("empty timeline summary")
	}
	if _, err := imitator.RunWorkload(imitator.Workload{Algo: "sort", Dataset: "dblp"}, cfg); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDatasetHelpers(t *testing.T) {
	names := imitator.DatasetNames()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	cat := imitator.Datasets()
	for _, n := range names {
		if _, ok := cat[n]; !ok {
			t.Errorf("name %q missing from catalog", n)
		}
	}
	g, err := imitator.LoadDataset(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Error("empty dataset")
	}
	if _, err := imitator.LoadDataset("no-such-dataset"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := imitator.ReadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"), 0); err != nil {
		t.Error(err)
	}
}
