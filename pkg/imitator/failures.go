package imitator

import (
	"errors"

	"imitator/internal/chaos"
	"imitator/internal/core"
)

// FailureEvent is one typed entry of a failure schedule. Build events with
// Crash, CrashDuringRecovery, SlowLink and DelayBurst rather than filling
// the struct directly.
type FailureEvent = core.ChaosEvent

// FailureSchedule is an ordered list of failure events; compose one with
// the event builders and install it with WithFailures.
type FailureSchedule = chaos.Schedule

// Crash schedules a fail-stop of the given nodes at iteration iter in the
// given phase. Detection runs through the simulated heartbeat monitor at
// the configured detection cost.
func Crash(iter int, phase FailPhase, nodes ...int) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosCrash, Iteration: iter, Phase: phase, Nodes: nodes}
}

// CrashDuringRecovery schedules a fail-stop of the given nodes the moment
// the first recovery pass of the run reaches its first phase — a failure
// in the middle of handling an earlier failure (§5.3.2). Fires at most
// once.
func CrashDuringRecovery(nodes ...int) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosCrashDuringRecovery, Nodes: nodes}
}

// CrashDuringRecoveryAt is CrashDuringRecovery pinned to a recovery phase
// label prefix, e.g. "migration:repair" or "rebirth:reload" (or just
// "migration:" for the first migration phase reached).
func CrashDuringRecoveryAt(label string, nodes ...int) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosCrashDuringRecovery, During: label, Nodes: nodes}
}

// SlowLink degrades the from->to link by factor (>= 1) from iteration iter
// onwards: transfers over it cost factor times the modeled time. Values
// are unaffected; only the simulated timeline changes.
func SlowLink(iter, from, to int, factor float64) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosSlowLink, Iteration: iter, From: from, To: to, Factor: factor}
}

// DelayBurst adds seconds of extra latency to every messaging round of one
// execution attempt of iteration iter.
func DelayBurst(iter int, seconds float64) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosDelayBurst, Iteration: iter, Seconds: seconds}
}

// Drop makes the from->to link lose each frame with probability prob
// (capped at MaxDropRate) from iteration iter onwards. Omission events
// install the reliable-delivery layer: frames are sequenced, acked and
// retransmitted, so values never change — only retransmission traffic and
// simulated time do (Result.Omission reports the wire activity). Fates are
// drawn per link from the seed set with WithChaosSeed.
func Drop(iter, from, to int, prob float64) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosDrop, Iteration: iter, From: from, To: to, Prob: prob}
}

// Duplicate makes the from->to link deliver each frame twice with
// probability prob from iteration iter onwards; the receiver deduplicates
// by sequence number.
func Duplicate(iter, from, to int, prob float64) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosDuplicate, Iteration: iter, From: from, To: to, Prob: prob}
}

// Reorder makes the from->to link displace each frame with probability
// prob from iteration iter onwards; the receiver restores sequence order
// before delivery.
func Reorder(iter, from, to int, prob float64) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosReorder, Iteration: iter, From: from, To: to, Prob: prob}
}

// Partition cuts the given nodes off the rest of the cluster at iteration
// iter and heals the cut at iteration heal (a heal >= the iteration count
// never heals). The partitioned nodes stay alive and keep computing, but
// their frames park in the severed links; survivors detect the silence
// (suspicion, then confirmation) and rebuild the slots under a bumped
// membership epoch, so the old incarnations' frames are fenced when the
// partition heals — the split-brain safety property.
func Partition(iter, heal int, nodes ...int) FailureEvent {
	return core.ChaosEvent{Kind: core.ChaosPartition, Iteration: iter, HealIter: heal, Nodes: nodes}
}

// MaxDropRate is the largest per-link drop probability accepted by Drop
// events; higher rates would stall the bounded retransmission protocol.
const MaxDropRate = core.MaxDropRate

// WithChaosSeed seeds the deterministic per-link fate generators of the
// omission events (Drop, Duplicate, Reorder). The same schedule with the
// same seed replays bit-identically — retransmit counts, simulated time
// and byte streams included; different seeds draw different loss patterns
// from the same probabilities. Without omission events the seed is unused.
func WithChaosSeed(seed uint64) Option {
	return func(c *Config) { c.ChaosSeed = seed }
}

// OmissionStats is the omission-fault layer's wire accounting, reported in
// Result.Omission (nil when the schedule had no omission events).
type OmissionStats = core.OmissionStats

// WithFailures installs a failure schedule composed from the event
// builders:
//
//	imitator.WithFailures(
//		imitator.Crash(3, imitator.FailBeforeBarrier, 1),
//		imitator.CrashDuringRecoveryAt("migration:repair", 4),
//		imitator.SlowLink(2, 0, 3, 8),
//	)
//
// Repeated options append. Invalid schedules are reported by NewCluster /
// Run with an error matching ErrInvalidSchedule.
func WithFailures(events ...FailureEvent) Option {
	return func(c *Config) { c.Chaos = append(c.Chaos, events...) }
}

// WithRebirthFallback lets a Rebirth recovery that finds the standby pool
// exhausted fall back to Migration instead of failing with ErrNoStandby.
func WithRebirthFallback() Option {
	return func(c *Config) { c.RebirthFallback = true }
}

// ParseFailureSchedule parses the compact one-line schedule grammar
// ("crash@3b=1|crashrec@migration:repair=4|slow@2=0>3x8|delay@4=0.25");
// see FormatFailureSchedule for the inverse. Errors match
// ErrInvalidSchedule.
func ParseFailureSchedule(s string) (FailureSchedule, error) {
	return chaos.ParseEvents(s)
}

// FormatFailureSchedule renders a schedule in the grammar accepted by
// ParseFailureSchedule.
func FormatFailureSchedule(events FailureSchedule) string {
	return chaos.FormatEvents(events)
}

// ChaosCampaign is a seeded randomized fault-injection campaign: every
// round draws a multi-failure schedule and checks convergence to the
// fault-free result. See internal/chaos for the scenario mix.
type ChaosCampaign = chaos.Campaign

// ChaosReport is a finished campaign's summary; failed rounds carry
// deterministic repro strings replayable with ChaosCampaign.Replay.
type ChaosReport = chaos.Report

// Typed failure-handling sentinels. Match with errors.Is; both
// ErrNoStandby and ErrTooManyFailures also match ErrUnrecoverable.
var (
	// ErrUnrecoverable reports a failure the configured strategy cannot
	// recover from.
	ErrUnrecoverable = core.ErrUnrecoverable
	// ErrNoStandby reports an exhausted standby pool during a Rebirth or
	// Checkpoint recovery (see WithMaxRebirths and WithRebirthFallback).
	ErrNoStandby = core.ErrNoStandby
	// ErrTooManyFailures reports more simultaneous node losses than the
	// replication factor K tolerates.
	ErrTooManyFailures = core.ErrTooManyFailures
	// ErrInvalidSchedule reports a malformed failure schedule or an event
	// referencing iterations/nodes outside the job.
	ErrInvalidSchedule = core.ErrInvalidSchedule
)

// IsUnrecoverable reports whether err represents a failure the run could
// not recover from (convenience for errors.Is(err, ErrUnrecoverable)).
func IsUnrecoverable(err error) bool { return errors.Is(err, ErrUnrecoverable) }
