package imitator

import "imitator/internal/core"

// Option mutates a job configuration being assembled by New.
type Option func(*Config)

// New assembles a Config from options on top of the engine defaults:
// edge-cut mode, 8 nodes, replication-based FT with K=1 and the selfish
// optimization, Rebirth recovery, 10 iterations, one worker per node.
// Options apply in order (later options win). The partitioner defaults to
// the mode's standard choice — hash for edge-cut, hybrid-cut for
// vertex-cut — unless WithPartitioner overrides it.
//
// New never fails; an impossible combination is reported by NewCluster /
// Run via Config.Validate.
func New(opts ...Option) Config {
	cfg := core.DefaultConfig(core.EdgeCutMode, 8)
	cfg.Partitioner = 0 // sentinel: resolve from final mode below
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Partitioner == 0 {
		cfg.Partitioner = core.DefaultConfig(cfg.Mode, cfg.NumNodes).Partitioner
	}
	return cfg
}

// WithMode selects the execution engine: EdgeCutMode or VertexCutMode.
func WithMode(m Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithNodes sets the simulated cluster size.
func WithNodes(n int) Option {
	return func(c *Config) { c.NumNodes = n }
}

// WithIterations caps the job at n supersteps.
func WithIterations(n int) Option {
	return func(c *Config) { c.MaxIter = n }
}

// WithWorkers sets the intra-node worker-pool width: each node shards its
// vertex array into n contiguous chunks per phase and reduces them in
// chunk order, so results are bit-for-bit identical for every n >= 1.
func WithWorkers(n int) Option {
	return func(c *Config) { c.WorkersPerNode = n }
}

// WithHostParallelism caps the real goroutines the engine uses to execute a
// run at n (0 = GOMAXPROCS). This is pure host scheduling: unlike
// WithWorkers it never changes simulated widths, costs or results — the
// same run produces bit-identical output at every setting.
func WithHostParallelism(n int) Option {
	return func(c *Config) { c.HostParallelism = n }
}

// WithFT enables replication-based fault tolerance configured to survive k
// simultaneous machine failures (the paper's K), keeping the selfish-vertex
// optimization on.
func WithFT(k int) Option {
	return func(c *Config) {
		c.FT.Enabled = true
		c.FT.K = k
	}
}

// WithoutFT disables replication-based fault tolerance (baseline runs and
// checkpoint-only configurations).
func WithoutFT() Option {
	return func(c *Config) { c.FT = core.FTConfig{} }
}

// WithSelfishOpt toggles the selfish-vertex optimization (§4.4): vertices
// with no out-edges skip FT replication and are recomputed on demand.
func WithSelfishOpt(on bool) Option {
	return func(c *Config) { c.FT.SelfishOpt = on }
}

// WithRecovery selects the recovery strategy by kind, keeping the
// replication/checkpoint layers as previously configured (checkpoint
// recovery auto-enables snapshots at interval 1 if none are configured).
//
// Deprecated: use WithFTStrategy with a typed constructor — Replication(),
// Migration(), Checkpoint(...), LoggedRecovery() — which configures the
// recovery kind and the persistence machinery it depends on in one option.
func WithRecovery(r Recovery) Option {
	return WithFTStrategy(legacyStrategy(r))
}

// WithCheckpoint configures the checkpoint-based baseline: periodic
// snapshots every interval iterations, checkpoint recovery, and
// replication FT off (apply WithFT afterwards to combine them).
//
// Deprecated: use WithFTStrategy(Checkpoint(interval, ...)), which also
// takes the in-memory and incremental sub-options.
func WithCheckpoint(interval int) Option {
	return WithFTStrategy(Checkpoint(interval))
}

// WithPartitioner overrides the mode's default graph partitioner.
func WithPartitioner(p Partitioner) Option {
	return func(c *Config) { c.Partitioner = p }
}

// WithFailure schedules a crash of the given nodes at iteration iter in
// the given phase. Repeat the option to inject several failures.
//
// Deprecated: use WithFailures with the Crash builder, which routes the
// crash through the heartbeat failure detector (same timing and results)
// and composes with the other failure-event kinds.
func WithFailure(iter int, phase FailPhase, nodes ...int) Option {
	return WithFailures(Crash(iter, phase, nodes...))
}

// WithMaxRebirths bounds how many standby rebirths the cluster can perform.
func WithMaxRebirths(n int) Option {
	return func(c *Config) { c.MaxRebirths = n }
}

// WithTransport selects message delivery: in-memory (default) or a
// loopback TCP mesh.
func WithTransport(t Transport) Option {
	return func(c *Config) { c.Transport = t }
}
