package imitator

import "imitator/internal/core"

// Option mutates a job configuration being assembled by New.
//
// The option set is grouped into four families:
//
//   - Engine options shape the simulated cluster and execution engine:
//     WithMode, WithNodes, WithIterations, WithWorkers,
//     WithHostParallelism, WithPartitioner, WithTransport.
//   - FT options pin the fault-tolerance story: WithFTStrategy with the
//     typed constructors (Replication, Migration, Checkpoint,
//     LoggedRecovery, NoRecovery), plus WithMaxRebirths and
//     WithRebirthFallback.
//   - Chaos options inject faults: WithFailures with the event builders
//     (Crash, CrashDuringRecovery, SlowLink, DelayBurst, Drop, Duplicate,
//     Reorder, Partition) and WithChaosSeed.
//   - Membership options pick the failure detector chaos crashes are
//     delivered through: WithMembership(Centralized|Gossip) with
//     GossipFanout, GossipSuspicionPeriods and GossipPeriodSeconds.
//   - Serve options turn the run into a long-lived queryable service:
//     WithServe and its sub-options (see serve.go).
type Option func(*Config)

// New assembles a Config from options on top of the engine defaults:
// edge-cut mode, 8 nodes, replication-based FT with K=1 and the selfish
// optimization, Rebirth recovery, 10 iterations, one worker per node.
// Options apply in order (later options win). The partitioner defaults to
// the mode's standard choice — hash for edge-cut, hybrid-cut for
// vertex-cut — unless WithPartitioner overrides it.
//
// New never fails; an impossible combination is reported by NewCluster /
// Run via Config.Validate.
func New(opts ...Option) Config {
	cfg := core.DefaultConfig(core.EdgeCutMode, 8)
	cfg.Partitioner = 0 // sentinel: resolve from final mode below
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Partitioner == 0 {
		cfg.Partitioner = core.DefaultConfig(cfg.Mode, cfg.NumNodes).Partitioner
	}
	return cfg
}

// ---- Engine options ---------------------------------------------------

// WithMode selects the execution engine: EdgeCutMode or VertexCutMode.
func WithMode(m Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithNodes sets the simulated cluster size.
func WithNodes(n int) Option {
	return func(c *Config) { c.NumNodes = n }
}

// WithIterations caps the job at n supersteps.
func WithIterations(n int) Option {
	return func(c *Config) { c.MaxIter = n }
}

// WithWorkers sets the intra-node worker-pool width: each node shards its
// vertex array into n contiguous chunks per phase and reduces them in
// chunk order, so results are bit-for-bit identical for every n >= 1.
func WithWorkers(n int) Option {
	return func(c *Config) { c.WorkersPerNode = n }
}

// WithHostParallelism caps the real goroutines the engine uses to execute a
// run at n (0 = GOMAXPROCS). This is pure host scheduling: unlike
// WithWorkers it never changes simulated widths, costs or results — the
// same run produces bit-identical output at every setting.
func WithHostParallelism(n int) Option {
	return func(c *Config) { c.HostParallelism = n }
}

// WithPartitioner overrides the mode's default graph partitioner.
func WithPartitioner(p Partitioner) Option {
	return func(c *Config) { c.Partitioner = p }
}

// WithTransport selects message delivery: in-memory (default) or a
// loopback TCP mesh.
func WithTransport(t Transport) Option {
	return func(c *Config) { c.Transport = t }
}

// ---- FT options -------------------------------------------------------
//
// The strategy constructors live in strategy.go; WithFTStrategy is the one
// entry point. The former piecemeal toggles (WithFT, WithoutFT,
// WithSelfishOpt, WithRecovery, WithCheckpoint) were removed in v1 — their
// replacements are Replication(ReplicationK(k), ReplicationSelfish(on)),
// NoRecovery(), and Checkpoint(interval, ...).

// WithMaxRebirths bounds how many standby rebirths the cluster can perform.
func WithMaxRebirths(n int) Option {
	return func(c *Config) { c.MaxRebirths = n }
}

// ---- Membership options ------------------------------------------------

// MembershipOption tunes the failure detector selected by WithMembership.
type MembershipOption func(*core.MembershipConfig)

// WithMembership selects the failure-detection protocol that delivers
// chaos crashes to the coordinator: Centralized (the default heartbeat
// monitor, bit-identical to prior releases) or Gossip (decentralized
// SWIM probing over a lossy datagram network that inherits the run's
// drop/partition chaos). Both feed the identical Suspect/MarkFailed
// path into rebirth, migration and serve-mode routing.
func WithMembership(m Membership, opts ...MembershipOption) Option {
	return func(c *Config) {
		c.Membership = core.MembershipConfig{Kind: m}
		for _, o := range opts {
			o(&c.Membership)
		}
	}
}

// GossipFanout sets SWIM's k: the indirect ping-req helpers recruited
// when a direct probe goes unanswered (default 3).
func GossipFanout(k int) MembershipOption {
	return func(m *core.MembershipConfig) { m.GossipFanout = k }
}

// GossipSuspicionPeriods sets how many protocol periods a suspected
// member has to refute before it is confirmed failed (default 3).
func GossipSuspicionPeriods(n int) MembershipOption {
	return func(m *core.MembershipConfig) { m.SuspicionPeriods = n }
}

// GossipPeriodSeconds sets the simulated length of one protocol period
// (default: the cost model's heartbeat interval).
func GossipPeriodSeconds(s float64) MembershipOption {
	return func(m *core.MembershipConfig) { m.PeriodSeconds = s }
}
