package imitator_test

import (
	"reflect"
	"testing"

	"imitator/internal/core"
	"imitator/pkg/imitator"
)

// TestFTStrategyMapping pins each typed constructor to the engine config it
// produces.
func TestFTStrategyMapping(t *testing.T) {
	cases := map[string]struct {
		strat imitator.FTStrategy
		check func(t *testing.T, c imitator.Config)
	}{
		"replication": {
			imitator.Replication(imitator.ReplicationK(2), imitator.ReplicationSelfish(false)),
			func(t *testing.T, c imitator.Config) {
				if c.Recovery != imitator.RecoverRebirth || !c.FT.Enabled || c.FT.K != 2 || c.FT.SelfishOpt {
					t.Errorf("replication config wrong: %+v", c)
				}
			},
		},
		"replication-fallback": {
			imitator.Replication(imitator.ReplicationFallback()),
			func(t *testing.T, c imitator.Config) {
				if !c.RebirthFallback || c.FT.K != 1 {
					t.Errorf("fallback config wrong: %+v", c)
				}
			},
		},
		"migration": {
			imitator.Migration(),
			func(t *testing.T, c imitator.Config) {
				if c.Recovery != imitator.RecoverMigration || !c.FT.Enabled {
					t.Errorf("migration config wrong: %+v", c)
				}
			},
		},
		"checkpoint": {
			imitator.Checkpoint(3, imitator.CheckpointInMemory(), imitator.CheckpointIncremental(5)),
			func(t *testing.T, c imitator.Config) {
				ck := c.Checkpoint
				if c.Recovery != imitator.RecoverCheckpoint || !ck.Enabled || ck.Interval != 3 ||
					!ck.InMemory || !ck.Incremental || ck.FullEvery != 5 || c.FT.Enabled {
					t.Errorf("checkpoint config wrong: %+v", c)
				}
			},
		},
		"logged": {
			imitator.LoggedRecovery(imitator.LoggedCompactEvery(4)),
			func(t *testing.T, c imitator.Config) {
				if c.Recovery != imitator.RecoverLogged || !c.Logged.Enabled ||
					c.Logged.CompactEvery != 4 || c.FT.Enabled || c.Checkpoint.Enabled {
					t.Errorf("logged config wrong: %+v", c)
				}
			},
		},
		"none": {
			imitator.NoRecovery(),
			func(t *testing.T, c imitator.Config) {
				if c.Recovery != imitator.RecoverNone || c.FT.Enabled || c.Checkpoint.Enabled || c.Logged.Enabled {
					t.Errorf("none config wrong: %+v", c)
				}
			},
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			cfg := imitator.New(imitator.WithFTStrategy(tc.strat))
			tc.check(t, cfg)
			if err := cfg.Validate(); err != nil {
				t.Errorf("strategy config does not validate: %v", err)
			}
		})
	}
}

// TestFTStrategyByName: the CLI name registry matches the constructors.
func TestFTStrategyByName(t *testing.T) {
	for name, wantKind := range map[string]imitator.Recovery{
		"replication": imitator.RecoverRebirth,
		"rebirth":     imitator.RecoverRebirth,
		"migration":   imitator.RecoverMigration,
		"checkpoint":  imitator.RecoverCheckpoint,
		"logged":      imitator.RecoverLogged,
		"none":        imitator.RecoverNone,
	} {
		s, ok := imitator.FTStrategyByName(name)
		if !ok {
			t.Fatalf("%s: not registered", name)
		}
		if cfg := imitator.New(imitator.WithFTStrategy(s)); cfg.Recovery != wantKind {
			t.Errorf("%s -> %v, want %v", name, cfg.Recovery, wantKind)
		}
	}
	if _, ok := imitator.FTStrategyByName("raid"); ok {
		t.Error("unknown name accepted")
	}
}

// TestStrategyIdempotent: applying the same strategy twice is a no-op, so
// CLI layers can safely re-apply a resolved strategy.
func TestStrategyIdempotent(t *testing.T) {
	once := imitator.New(imitator.WithFTStrategy(imitator.Checkpoint(3)))
	twice := imitator.New(
		imitator.WithFTStrategy(imitator.Checkpoint(3)),
		imitator.WithFTStrategy(imitator.Checkpoint(3)),
	)
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("Checkpoint(3) not idempotent:\n%+v\n%+v", once, twice)
	}
}

// TestLoggedRecoveryEndToEnd drives the new strategy through the facade and
// reads the uniform stats back.
func TestLoggedRecoveryEndToEnd(t *testing.T) {
	g := ring(t, 200)
	cfg := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(8),
		imitator.WithFTStrategy(imitator.LoggedRecovery(imitator.LoggedCompactEvery(3))),
		imitator.WithFailures(imitator.Crash(5, imitator.FailBeforeBarrier, 2)),
	)
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 || res.Recoveries[0].Kind != "logged" {
		t.Fatalf("recoveries = %+v, want one logged", res.Recoveries)
	}
	if res.Recoveries[0].ReplayIters != 0 {
		t.Errorf("ReplayIters = %d, want 0 (failure-confined)", res.Recoveries[0].ReplayIters)
	}
	if res.Recoveries[0].LogReplaySupersteps == 0 {
		t.Error("no log supersteps replayed")
	}
	st := res.Strategy
	if st.Kind != "logged" || st.PersistCount != 8 || st.LogRecords == 0 || st.Recoveries != 1 {
		t.Errorf("Strategy stats wrong: %+v", st)
	}

	// The same run fault-free matches bit-for-bit.
	base := cfg
	base.Chaos = nil
	want, err := imitator.Run(base, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Values {
		if res.Values[v] != want.Values[v] {
			t.Fatalf("vertex %d: %g != %g", v, res.Values[v], want.Values[v])
		}
	}
	_ = core.RecoverLogged // facade const aliases the engine's
}
