package imitator_test

import (
	"errors"
	"testing"

	"imitator/pkg/imitator"
)

// TestFailureScheduleBuilders: composed schedules survive a multi-failure
// run — a crash, a second crash during its recovery, and degradation —
// and the result reports every recovery.
func TestFailureScheduleBuilders(t *testing.T) {
	g := ring(t, 240)
	cfg := imitator.New(
		imitator.WithNodes(6),
		imitator.WithIterations(8),
		imitator.WithFTStrategy(imitator.Migration(imitator.ReplicationK(2))),
		imitator.WithFailures(
			imitator.Crash(3, imitator.FailBeforeBarrier, 1),
			imitator.CrashDuringRecoveryAt("migration:repair", 4),
			imitator.SlowLink(2, 0, 3, 4),
			imitator.DelayBurst(5, 0.1),
		),
	)
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) == 0 {
		t.Fatal("no recoveries reported")
	}
	last := res.Recoveries[len(res.Recoveries)-1]
	if len(last.Failed) != 2 {
		t.Fatalf("final recovery covered %v, want both victims", last.Failed)
	}
	if last.Kind != "migration" || last.Bytes <= 0 || last.RecoveredVertices <= 0 {
		t.Fatalf("report incomplete: %+v", last)
	}

	// The same values as the fault-free run, bit for bit (edge-cut).
	clean := imitator.New(
		imitator.WithNodes(6),
		imitator.WithIterations(8),
		imitator.WithFTStrategy(imitator.Migration(imitator.ReplicationK(2))),
	)
	want, err := imitator.Run(clean, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Values {
		if res.Values[v] != want.Values[v] {
			t.Fatalf("vertex %d: %v != fault-free %v", v, res.Values[v], want.Values[v])
		}
	}
}

// TestOmissionBuilders: the lossy-network builders run a job through
// drop/dup/reorder faults and a healed partition, converge to the
// fault-free values bit for bit, and report the wire activity.
func TestOmissionBuilders(t *testing.T) {
	g := ring(t, 240)
	opts := func(extra ...imitator.Option) []imitator.Option {
		return append([]imitator.Option{
			imitator.WithNodes(6),
			imitator.WithIterations(8),
			imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(2))),
			imitator.WithMaxRebirths(8),
		}, extra...)
	}
	want, err := imitator.Run(imitator.New(opts()...), g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if want.Omission != nil {
		t.Fatalf("fault-free run reported omission stats: %+v", *want.Omission)
	}

	cfg := imitator.New(opts(
		imitator.WithFailures(
			imitator.Drop(1, 0, 2, 0.35),
			imitator.Duplicate(1, 2, 4, 0.4),
			imitator.Reorder(1, 4, 3, 0.5),
			imitator.Partition(2, 5, 1),
		),
		imitator.WithChaosSeed(42),
	)...)
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Values {
		if res.Values[v] != want.Values[v] {
			t.Fatalf("vertex %d: %v != fault-free %v", v, res.Values[v], want.Values[v])
		}
	}
	if res.Omission == nil {
		t.Fatal("omission schedule reported no omission stats")
	}
	if res.Omission.Retransmits == 0 || res.Omission.Fenced == 0 {
		t.Fatalf("omission layer idle: %+v", *res.Omission)
	}
	if len(res.Recoveries) == 0 {
		t.Fatal("partitioned node was not recovered")
	}

	// A drop probability above the cap is rejected up front.
	bad := imitator.New(opts(imitator.WithFailures(
		imitator.Drop(1, 0, 2, imitator.MaxDropRate+0.01),
	))...)
	if _, err := imitator.Run(bad, g, imitator.NewPageRank(g.NumVertices())); !errors.Is(err, imitator.ErrInvalidSchedule) {
		t.Fatalf("over-cap drop rate: err = %v, want ErrInvalidSchedule", err)
	}
}

// TestCrashRidesChaosPath: Crash events land in the chaos schedule, never
// the legacy Failures list (removed from the option surface in v1).
func TestCrashRidesChaosPath(t *testing.T) {
	cfg := imitator.New(imitator.WithFailures(imitator.Crash(4, imitator.FailAfterBarrier, 2)))
	if len(cfg.Failures) != 0 {
		t.Fatalf("Crash filled the legacy schedule: %+v", cfg.Failures)
	}
	if len(cfg.Chaos) != 1 || cfg.Chaos[0].Iteration != 4 {
		t.Fatalf("Crash chaos event wrong: %+v", cfg.Chaos)
	}
}

// TestTypedErrors: sentinel errors surface through the facade and chain
// into ErrUnrecoverable.
func TestTypedErrors(t *testing.T) {
	g := ring(t, 120)

	exhausted := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(6),
		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
		imitator.WithMaxRebirths(0),
		imitator.WithFailures(imitator.Crash(2, imitator.FailBeforeBarrier, 1)),
	)
	_, err := imitator.Run(exhausted, g, imitator.NewPageRank(g.NumVertices()))
	if !errors.Is(err, imitator.ErrNoStandby) || !imitator.IsUnrecoverable(err) {
		t.Fatalf("exhaustion err = %v, want ErrNoStandby wrapping ErrUnrecoverable", err)
	}

	beyondK := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(6),
		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
		imitator.WithFailures(imitator.Crash(2, imitator.FailBeforeBarrier, 1, 2)),
	)
	_, err = imitator.Run(beyondK, g, imitator.NewPageRank(g.NumVertices()))
	if !errors.Is(err, imitator.ErrTooManyFailures) || !imitator.IsUnrecoverable(err) {
		t.Fatalf("beyond-K err = %v, want ErrTooManyFailures wrapping ErrUnrecoverable", err)
	}

	invalid := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(6),
		imitator.WithFailures(imitator.Crash(99, imitator.FailBeforeBarrier, 1)),
	)
	_, err = imitator.Run(invalid, g, imitator.NewPageRank(g.NumVertices()))
	if !errors.Is(err, imitator.ErrInvalidSchedule) {
		t.Fatalf("invalid schedule err = %v, want ErrInvalidSchedule", err)
	}
}

// TestRebirthFallbackOption: exhaustion + fallback completes as migration.
func TestRebirthFallbackOption(t *testing.T) {
	g := ring(t, 180)
	cfg := imitator.New(
		imitator.WithNodes(5),
		imitator.WithIterations(6),
		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
		imitator.WithMaxRebirths(0),
		imitator.WithRebirthFallback(),
		imitator.WithFailures(imitator.Crash(2, imitator.FailBeforeBarrier, 1)),
	)
	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 || res.Recoveries[0].Kind != "migration" || !res.Recoveries[0].Fallback {
		t.Fatalf("recoveries = %+v, want one migration fallback", res.Recoveries)
	}
}

// TestScheduleGrammarFacade: parse and format round-trip through the
// public helpers.
func TestScheduleGrammarFacade(t *testing.T) {
	sched := imitator.FailureSchedule{
		imitator.Crash(3, imitator.FailBeforeBarrier, 1, 4),
		imitator.CrashDuringRecoveryAt("rebirth:reload", 2),
		imitator.SlowLink(2, 0, 3, 8),
		imitator.DelayBurst(4, 0.25),
	}
	text := imitator.FormatFailureSchedule(sched)
	back, err := imitator.ParseFailureSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if imitator.FormatFailureSchedule(back) != text {
		t.Fatalf("round trip: %q != %q", imitator.FormatFailureSchedule(back), text)
	}
	if _, err := imitator.ParseFailureSchedule("crash@3=1"); !errors.Is(err, imitator.ErrInvalidSchedule) {
		t.Fatalf("bad grammar err = %v, want ErrInvalidSchedule", err)
	}
}
