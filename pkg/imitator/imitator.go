// Package imitator is the public API of the replication-based
// fault-tolerant graph engine (Imitator, DSN'14). It wraps the internal
// engine behind a small stable surface: build a job configuration with
// New and functional options, load or construct a graph, and run a vertex
// program on the simulated cluster.
//
// Quickstart:
//
//	g := imitator.MustLoadDataset("gweb")
//	cfg := imitator.New(
//		imitator.WithNodes(8),
//		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
//		imitator.WithIterations(10),
//		imitator.WithFailures(
//			imitator.Crash(5, imitator.FailBeforeBarrier, 2),
//			imitator.CrashDuringRecovery(3),
//		),
//	)
//	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
//
// WithFTStrategy selects among the four fault-tolerance strategies —
// Replication (rebirth), Migration, Checkpoint, LoggedRecovery — each with
// typed sub-options; Result.Strategy reports their overheads uniformly.
//
// Long-lived serving (v1): add WithServe() and run the job through Serve /
// ServeOn to keep the graph resident and answer live reads — vertex
// values, top-K ranks, neighborhoods — from epoch-consistent snapshots
// while the engine executes and recovers:
//
//	srv, err := imitator.Serve(imitator.Workload{Algo: "pagerank", Dataset: "gweb", Iters: 10},
//		imitator.New(imitator.WithServe(imitator.ServeStalenessBound(2))))
//	ans, err := srv.Query(imitator.Query{Kind: imitator.QueryTopK, K: 10})
//
// Everything reachable from this package is supported API; callers never
// need to import imitator/internal/... directly.
package imitator

import (
	"imitator/internal/core"
	"imitator/internal/graph"
	"imitator/internal/metrics"
)

// Graph is an immutable directed weighted graph in CSR form.
type Graph = graph.Graph

// VertexID identifies a vertex; ids are dense in [0, NumVertices).
type VertexID = graph.VertexID

// Edge is one directed weighted edge.
type Edge = graph.Edge

// Program is the vertex-program interface (GAS-style): V is the vertex
// value type, A the accumulator type exchanged between presences.
type Program[V, A any] = core.Program[V, A]

// Codec serializes values of type T onto the simulated wire.
type Codec[T any] = core.Codec[T]

// VertexInfo carries per-vertex topology facts into Program callbacks.
type VertexInfo = core.VertexInfo

// Cluster is a configured simulated cluster ready to Run one job.
type Cluster[V, A any] = core.Cluster[V, A]

// Result is a finished job's output and accounting.
type Result[V any] = core.Result[V]

// Config is a fully-resolved job configuration. Build one with New; the
// zero value is not runnable.
type Config = core.Config

// TraceEvent is one entry of the simulated execution timeline.
type TraceEvent = core.TraceEvent

// RecoveryReport breaks one recovery down: strategy, trigger iteration,
// nodes lost, per-phase simulated seconds, and replayed traffic. A run's
// reports are in Result.Recoveries.
type RecoveryReport = core.RecoveryReport

// WorkerTimes holds one node's per-worker busy seconds (intra-node pool).
type WorkerTimes = metrics.WorkerTimes

// NodeMetrics is one node's (or the cluster-total) traffic/compute counters.
type NodeMetrics = metrics.Node

// Execution modes.
type Mode = core.Mode

const (
	EdgeCutMode   = core.EdgeCutMode   // Cyclops: vertices partitioned, edges at masters
	VertexCutMode = core.VertexCutMode // PowerLyra: edges partitioned, GAS execution
)

// Partitioner kinds. The zero value in New means "mode default"
// (PartHash for edge-cut, PartHybrid for vertex-cut).
type Partitioner = core.PartitionerKind

const (
	PartHash      = core.PartHash
	PartFennel    = core.PartFennel
	PartLDG       = core.PartLDG
	PartOblivious = core.PartOblivious
	PartRandom    = core.PartRandom
	PartGrid      = core.PartGrid
	PartHybrid    = core.PartHybrid
)

// Recovery strategies.
type Recovery = core.RecoveryKind

const (
	RecoverNone       = core.RecoverNone
	RecoverCheckpoint = core.RecoverCheckpoint
	RecoverRebirth    = core.RecoverRebirth
	RecoverMigration  = core.RecoverMigration
	RecoverLogged     = core.RecoverLogged
)

// StrategyStats is the uniform per-strategy accounting in Result.Strategy:
// superstep-end persistence work (snapshots and/or logs) and completed
// recovery passes, comparable across strategies.
type StrategyStats = core.StrategyStats

// Failure-injection phases.
type FailPhase = core.FailPhase

const (
	FailBeforeBarrier = core.FailBeforeBarrier
	FailAfterBarrier  = core.FailAfterBarrier
)

// FailureSpec schedules a crash of Nodes at Iteration/Phase.
type FailureSpec = core.FailureSpec

// Transports.
type Transport = core.TransportKind

const (
	TransportMem = core.TransportMem
	TransportTCP = core.TransportTCP
)

// Membership selects the failure-detection protocol (see WithMembership).
type Membership = core.MembershipKind

// Membership protocols.
const (
	// Centralized is the default heartbeat monitor: every node beats to a
	// central master (the paper's Zookeeper-style membership).
	Centralized = core.MembershipCentralized
	// Gossip is decentralized SWIM-style probing with piggybacked
	// dissemination, running over a lossy datagram network that inherits
	// the run's drop and partition chaos.
	Gossip = core.MembershipGossip
)

// Ready-made codecs for common value/accumulator types.
type (
	Float64Codec    = core.Float64Codec
	Int32Codec      = core.Int32Codec
	VecCodec        = core.VecCodec
	LabelCount      = core.LabelCount
	LabelCountCodec = core.LabelCountCodec
)

// MergeLabelCounts merges two sorted label-count accumulators.
func MergeLabelCounts(a, b []LabelCount) []LabelCount {
	return core.MergeLabelCounts(a, b)
}

// NewCluster builds a simulated cluster for one job: it validates cfg,
// partitions g across the nodes, extends replication for fault tolerance,
// and instantiates prog on every node.
func NewCluster[V, A any](cfg Config, g *Graph, prog Program[V, A]) (*Cluster[V, A], error) {
	return core.NewCluster[V, A](cfg, g, prog)
}

// Run is the one-shot entrypoint: NewCluster + Cluster.Run.
func Run[V, A any](cfg Config, g *Graph, prog Program[V, A]) (*Result[V], error) {
	cl, err := core.NewCluster[V, A](cfg, g, prog)
	if err != nil {
		return nil, err
	}
	return cl.Run()
}
