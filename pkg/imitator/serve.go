package imitator

import (
	"imitator/internal/core"
	"imitator/internal/experiments"
	"imitator/internal/metrics"
)

// ---- Serve options and query API --------------------------------------
//
// Serve mode turns a run into a long-lived queryable service: the engine
// executes to convergence with the graph resident while concurrent readers
// query the last published epoch-consistent snapshot — from masters when
// they are healthy, from FT replicas while a node is suspected, failed or
// being rebuilt. Queries never block on recovery and never observe a torn
// superstep; each answer carries the epoch it was read from and the
// cluster frontier, so staleness is always explicit.

// ServeOption refines WithServe.
type ServeOption func(*core.ServeConfig)

// WithServe enables the serving layer. Serving is host-side only: it never
// charges simulated time or traffic, so a served run's SimSeconds and
// message bytes are bit-identical to the same run without it.
func WithServe(opts ...ServeOption) Option {
	return func(c *Config) {
		c.Serve.Enabled = true
		for _, o := range opts {
			o(&c.Serve)
		}
	}
}

// ServePublishEvery publishes a fresh snapshot every n committed supersteps
// (default 1). Larger intervals trade staleness for snapshot-copy work.
func ServePublishEvery(n int) ServeOption {
	return func(s *core.ServeConfig) { s.PublishEvery = n }
}

// ServeStalenessBound rejects queries whose snapshot would lag the frontier
// by more than n epochs with ErrStaleRead (0 = unbounded). Per-query
// Query.StalenessBound overrides it.
func ServeStalenessBound(n int) ServeOption {
	return func(s *core.ServeConfig) { s.StalenessBound = n }
}

// ServeKeepHistory retains every published snapshot for the run's lifetime
// (ground-truth validation and time-travel reads; memory grows with the
// iteration count).
func ServeKeepHistory() ServeOption {
	return func(s *core.ServeConfig) { s.KeepHistory = true }
}

// ServeConfig is the serving layer's engine configuration (Config.Serve).
type ServeConfig = core.ServeConfig

// QueryKind selects what a Query reads.
type QueryKind = core.QueryKind

const (
	// QueryValue reads one vertex's value at the answer's epoch.
	QueryValue = core.QueryValue
	// QueryTopK reads the K highest-valued vertices at the answer's epoch.
	QueryTopK = core.QueryTopK
	// QueryNeighbors reads a vertex's out-neighborhood (topology, K-capped).
	QueryNeighbors = core.QueryNeighbors
)

// Query is one typed read request; see the core type for field semantics.
type Query = core.Query

// Answer is one typed read response, stamped with the epoch it observed,
// the cluster frontier and the serving node.
type Answer = core.Answer

// RankEntry is one entry of a top-K answer.
type RankEntry = core.RankEntry

// ServeStats is the serving layer's accounting (Result.Serve).
type ServeStats = metrics.Serve

// Serving-layer sentinels; match with errors.Is.
var (
	// ErrServeDisabled reports a query against a run without WithServe.
	ErrServeDisabled = core.ErrServeDisabled
	// ErrBadQuery reports a malformed query (unknown kind, missing K).
	ErrBadQuery = core.ErrBadQuery
	// ErrUnknownVertex reports a vertex id outside the graph.
	ErrUnknownVertex = core.ErrUnknownVertex
	// ErrStaleRead reports a snapshot older than the staleness bound.
	ErrStaleRead = core.ErrStaleRead
	// ErrVertexUnavailable reports a vertex whose master is down and whose
	// replicas cannot serve (e.g. a selfish vertex under §4.4).
	ErrVertexUnavailable = core.ErrVertexUnavailable
)

// EncodeQuery appends q's wire form to buf (the query protocol a remote
// client would speak).
func EncodeQuery(buf []byte, q Query) []byte { return core.EncodeQuery(buf, q) }

// DecodeQuery parses one wire-encoded query; trailing bytes are an error.
func DecodeQuery(buf []byte) (Query, error) { return core.DecodeQuery(buf) }

// EncodeAnswer appends a's wire form to buf.
func EncodeAnswer(buf []byte, a Answer) []byte { return core.EncodeAnswer(buf, a) }

// DecodeAnswer parses one wire-encoded answer; trailing bytes are an error.
func DecodeAnswer(buf []byte) (Answer, error) { return core.DecodeAnswer(buf) }

// Server is a workload running to convergence in the background while
// serving live queries. Obtain one with Serve or ServeOn.
type Server struct {
	h *experiments.Handle
}

// Serve launches w on its catalog dataset under cfg with the serving layer
// enabled and returns immediately; query while it runs, Wait for the final
// summary.
func Serve(w Workload, cfg Config) (*Server, error) {
	h, err := experiments.StartWorkload(w, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{h: h}, nil
}

// ServeOn is Serve on an explicit graph.
func ServeOn(w Workload, g *Graph, cfg Config) (*Server, error) {
	h, err := experiments.StartWorkloadOn(w, g, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{h: h}, nil
}

// Query answers one live query from the last published epoch-consistent
// snapshot. Safe to call concurrently, during and after the run.
func (s *Server) Query(q Query) (Answer, error) { return s.h.Query(q) }

// Done is closed when the engine finishes (converged or failed).
func (s *Server) Done() <-chan struct{} { return s.h.Done() }

// Wait blocks until the run completes and returns its summary.
func (s *Server) Wait() (RunSummary, error) { return s.h.Wait() }
