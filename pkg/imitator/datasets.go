package imitator

import (
	"io"

	"imitator/internal/datasets"
	"imitator/internal/graph"
)

// Dataset describes one catalog entry (scaled stand-in for a paper dataset).
type Dataset = datasets.Dataset

// Datasets returns the dataset catalog keyed by name.
func Datasets() map[string]Dataset { return datasets.Catalog() }

// DatasetNames returns the catalog names in stable order.
func DatasetNames() []string { return datasets.Names() }

// LoadDataset synthesizes the named catalog dataset deterministically.
func LoadDataset(name string) (*Graph, error) { return datasets.Load(name) }

// MustLoadDataset is LoadDataset, panicking on unknown names.
func MustLoadDataset(name string) *Graph { return datasets.MustLoad(name) }

// ReadEdgeList parses a whitespace-separated "src dst [weight]" edge list.
// numVertices == 0 sizes the graph from the largest id seen.
func ReadEdgeList(r io.Reader, numVertices int) (*Graph, error) {
	return graph.ReadEdgeList(r, numVertices)
}

// NewGraph builds a graph from an explicit edge set.
func NewGraph(numVertices int, edges []Edge) (*Graph, error) {
	return graph.New(numVertices, edges)
}

// MustNewGraph is NewGraph, panicking on invalid input.
func MustNewGraph(numVertices int, edges []Edge) *Graph {
	return graph.MustNew(numVertices, edges)
}
