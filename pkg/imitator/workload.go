package imitator

import (
	"io"

	"imitator/internal/experiments"
	"imitator/internal/trace"
)

// Workload names an algorithm ("pagerank", "sssp", "cd", "als") and a
// catalog dataset, for callers that select jobs by string (CLIs, sweeps)
// instead of instantiating a typed Program.
type Workload = experiments.Workload

// RunSummary is a type-erased run report: everything in Result except the
// typed vertex values.
type RunSummary = experiments.RunSummary

// RunWorkload executes one named workload under cfg on its catalog dataset.
func RunWorkload(w Workload, cfg Config) (RunSummary, error) {
	return experiments.RunWorkload(w, cfg)
}

// RunWorkloadOn executes one named workload under cfg on an explicit graph.
func RunWorkloadOn(w Workload, g *Graph, cfg Config) (RunSummary, error) {
	return experiments.RunWorkloadOn(w, g, cfg)
}

// TimelineOptions configures RenderTimeline.
type TimelineOptions = trace.Options

// RenderTimeline writes an ASCII execution timeline of a run's TraceEvents.
func RenderTimeline(w io.Writer, events []TraceEvent, opts TimelineOptions) {
	trace.Render(w, events, opts)
}

// TimelineSummary returns a one-line accounting of a run's TraceEvents.
func TimelineSummary(events []TraceEvent) string {
	return trace.Summary(events)
}
