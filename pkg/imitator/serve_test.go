package imitator_test

import (
	"errors"
	"testing"

	"imitator/pkg/imitator"
)

// TestServeFacade: ServeOn keeps a run queryable while it executes and
// after it converges, with the options wired through.
func TestServeFacade(t *testing.T) {
	g := ring(t, 200)
	cfg := imitator.New(
		imitator.WithNodes(4),
		imitator.WithIterations(6),
		imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(1))),
		imitator.WithFailures(imitator.Crash(3, imitator.FailBeforeBarrier, 2)),
		imitator.WithServe(imitator.ServeStalenessBound(2), imitator.ServeKeepHistory()),
	)
	if !cfg.Serve.Enabled || cfg.Serve.StalenessBound != 2 || !cfg.Serve.KeepHistory {
		t.Fatalf("serve options not applied: %+v", cfg.Serve)
	}

	srv, err := imitator.ServeOn(imitator.Workload{Algo: "pagerank", Iters: 6}, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Query while the run is (possibly) still executing.
	if _, err := srv.Query(imitator.Query{Kind: imitator.QueryValue, Vertex: 0}); err != nil &&
		!errors.Is(err, imitator.ErrVertexUnavailable) {
		t.Fatalf("mid-run query: %v", err)
	}
	sum, err := srv.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Serve == nil || sum.Serve.Queries == 0 {
		t.Fatalf("summary missing serve stats: %+v", sum.Serve)
	}
	if len(sum.Recoveries) == 0 {
		t.Fatal("crash was not recovered")
	}

	// After convergence the answer is the final epoch at zero staleness.
	ans, err := srv.Query(imitator.Query{Kind: imitator.QueryTopK, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Epoch != 6 || ans.Staleness() != 0 || len(ans.TopK) != 5 {
		t.Fatalf("converged top-K: epoch=%d staleness=%d len=%d", ans.Epoch, ans.Staleness(), len(ans.TopK))
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done not closed after Wait")
	}
}

// TestServeFacadeUnsupported: serving a vector-valued algorithm is rejected
// up front, and a query without WithServe reports ErrServeDisabled.
func TestServeFacadeUnsupported(t *testing.T) {
	g := ring(t, 120)
	cfg := imitator.New(imitator.WithNodes(4), imitator.WithIterations(2))
	if _, err := imitator.ServeOn(imitator.Workload{Algo: "als", Iters: 2}, g, cfg); err == nil {
		t.Fatal("serving ALS (vector values) accepted")
	}

	res, err := imitator.Run(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Serve != nil {
		t.Fatalf("unserved run carries serve stats: %+v", res.Serve)
	}
	cl, err := imitator.NewCluster(cfg, g, imitator.NewPageRank(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(imitator.Query{Kind: imitator.QueryValue}); !errors.Is(err, imitator.ErrServeDisabled) {
		t.Fatalf("query without serve: %v, want ErrServeDisabled", err)
	}
}
