package imitator

import "imitator/internal/core"

// FTStrategy is a fault-tolerance strategy selection for WithFTStrategy.
// Build one with the typed constructors — Replication, Migration,
// Checkpoint, LoggedRecovery, NoRecovery — and refine it with their
// functional sub-options. A strategy configures the recovery mode *and* the
// persistence machinery it depends on, so one option pins the whole
// fault-tolerance story of a run.
type FTStrategy func(*Config)

// WithFTStrategy selects how the cluster persists state and recovers from
// machine failures:
//
//	imitator.WithFTStrategy(imitator.Replication(imitator.ReplicationK(2)))
//	imitator.WithFTStrategy(imitator.Checkpoint(4, imitator.CheckpointInMemory()))
//	imitator.WithFTStrategy(imitator.LoggedRecovery(imitator.LoggedCompactEvery(4)))
//
// Options apply in order, so a later WithFTStrategy replaces an earlier
// one; refine the replication layer with the strategy's own sub-options
// (ReplicationK, ReplicationSelfish, ...).
func WithFTStrategy(s FTStrategy) Option {
	return func(c *Config) { s(c) }
}

// ReplicationOption refines Replication or Migration.
type ReplicationOption func(*Config)

// Replication is the paper's replication-based FT with Rebirth recovery
// (§5.1): vertex replicas double as hot state, and a crashed node is rebuilt
// on a standby from the replicas scattered across the survivors.
func Replication(opts ...ReplicationOption) FTStrategy {
	return func(c *Config) {
		c.FT.Enabled = true
		if c.FT.K < 1 {
			c.FT.K = 1
		}
		c.Recovery = core.RecoverRebirth
		for _, o := range opts {
			o(c)
		}
	}
}

// Migration is replication-based FT with Migration recovery (§5.2): mirrors
// on the survivors are promoted to masters and the crashed node's workload
// scatters across the cluster — no standby machines needed.
func Migration(opts ...ReplicationOption) FTStrategy {
	return func(c *Config) {
		c.FT.Enabled = true
		if c.FT.K < 1 {
			c.FT.K = 1
		}
		c.Recovery = core.RecoverMigration
		for _, o := range opts {
			o(c)
		}
	}
}

// ReplicationK tolerates k simultaneous machine failures (the paper's K).
func ReplicationK(k int) ReplicationOption {
	return func(c *Config) { c.FT.K = k }
}

// ReplicationSelfish toggles the selfish-vertex optimization (§4.4).
func ReplicationSelfish(on bool) ReplicationOption {
	return func(c *Config) { c.FT.SelfishOpt = on }
}

// ReplicationFallback lets a Rebirth recovery that exhausts the standby pool
// fall back to Migration instead of failing the job.
func ReplicationFallback() ReplicationOption {
	return func(c *Config) { c.RebirthFallback = true }
}

// CheckpointOption refines Checkpoint.
type CheckpointOption func(*Config)

// Checkpoint is the checkpoint baseline (Imitator-CKPT): periodic snapshots
// to the DFS every interval iterations, and on failure the whole cluster
// reloads the last snapshot and re-executes the lost supersteps.
// Replication FT is turned off; the checkpoint baseline runs replica-free.
func Checkpoint(interval int, opts ...CheckpointOption) FTStrategy {
	return func(c *Config) {
		c.Checkpoint = core.CheckpointConfig{Enabled: true, Interval: interval}
		c.Recovery = core.RecoverCheckpoint
		c.FT = core.FTConfig{}
		for _, o := range opts {
			o(c)
		}
	}
}

// CheckpointInMemory snapshots to a memory-backed HDFS (Fig 7's CKPT-mem).
func CheckpointInMemory() CheckpointOption {
	return func(c *Config) { c.Checkpoint.InMemory = true }
}

// CheckpointIncremental writes delta snapshots with a full one every
// fullEvery snapshots (0 = the default of 4) to bound the recovery chain.
func CheckpointIncremental(fullEvery int) CheckpointOption {
	return func(c *Config) {
		c.Checkpoint.Incremental = true
		c.Checkpoint.FullEvery = fullEvery
	}
}

// LoggedOption refines LoggedRecovery.
type LoggedOption func(*Config)

// LoggedRecovery is log-based failure-confined recovery (after Yan, Cheng &
// Yang, arXiv:1601.06496): every node logs its vertex-state deltas and
// received sync payloads at superstep end, and on failure only the reborn
// nodes replay their own log chains — survivors perform zero recomputation.
// Needs neither replicas nor cluster-wide snapshots; replication FT is
// turned off, so reborn nodes rebuild purely from their own log chains.
func LoggedRecovery(opts ...LoggedOption) FTStrategy {
	return func(c *Config) {
		c.Logged = core.LoggedConfig{Enabled: true}
		c.Recovery = core.RecoverLogged
		c.FT = core.FTConfig{}
		for _, o := range opts {
			o(c)
		}
	}
}

// LoggedCompactEvery writes a full snapshot record every n supersteps in
// place of the delta log, bounding a reborn node's replay chain at n files
// (0 never compacts).
func LoggedCompactEvery(n int) LoggedOption {
	return func(c *Config) { c.Logged.CompactEvery = n }
}

// NoRecovery turns fault tolerance off entirely: no replicas, no snapshots,
// no logs, and any failure aborts the job (baseline runs).
func NoRecovery() FTStrategy {
	return func(c *Config) {
		c.Recovery = core.RecoverNone
		c.FT = core.FTConfig{}
		c.Checkpoint = core.CheckpointConfig{}
		c.Logged = core.LoggedConfig{}
	}
}

// FTStrategyByName resolves a strategy from its command-line name:
// "replication" (or "rebirth"), "migration", "checkpoint", "logged",
// "none". Unknown names return false.
func FTStrategyByName(name string) (FTStrategy, bool) {
	switch name {
	case "replication", "rebirth":
		return Replication(), true
	case "migration":
		return Migration(), true
	case "checkpoint":
		return Checkpoint(1), true
	case "logged":
		return LoggedRecovery(), true
	case "none":
		return NoRecovery(), true
	default:
		return nil, false
	}
}
