package imitator

import "imitator/internal/algorithms"

// NewPageRank returns the damped PageRank program (V = A = float64).
func NewPageRank(numVertices int) Program[float64, float64] {
	return algorithms.NewPageRank(numVertices)
}

// NewSSSP returns single-source shortest paths from source
// (V = A = float64; unreachable vertices converge to +Inf).
func NewSSSP(source VertexID) Program[float64, float64] {
	return algorithms.NewSSSP(source)
}

// NewCD returns label-propagation community detection
// (V = int32 label, A = []LabelCount).
func NewCD() Program[int32, []LabelCount] {
	return algorithms.NewCD()
}

// NewALS returns alternating least squares for a bipartite rating graph
// whose first numUsers ids are users (V = A = []float64 of length dim).
func NewALS(numUsers, dim int, lambda float64) Program[[]float64, []float64] {
	return algorithms.NewALS(numUsers, dim, lambda)
}

// NewCC returns connected components by min-label propagation
// (V = A = int32).
func NewCC() Program[int32, int32] {
	return algorithms.NewCC()
}

// NewKCore returns iterative k-core decomposition membership
// (V = A = int32).
func NewKCore(k int) Program[int32, int32] {
	return algorithms.NewKCore(k)
}
